"""Runtime-compiled native backend for the fast timing path.

The fast interval loop in :mod:`repro.sim.fast_timing` is CPython-bound:
profiling shows its per-cycle sections sit within a small factor of the
interpreter's bytecode floor.  To push the throughput an order of magnitude
further, this module compiles :file:`_native_core.c` — a transcription of
that loop, including the cache models — with the system C compiler at first
use, caches the shared object keyed by the source hash, and drives it
through :mod:`ctypes`.

The backend is strictly optional and strictly equivalent:

* if no C compiler is available, compilation fails, or ``REPRO_NATIVE=0``
  is set, :class:`~repro.sim.fast_timing.FastProcessor` silently keeps its
  pure-Python loop — same results, slower;
* the byte-equivalence suite runs the same scenarios with the backend
  enabled and disabled, so the C core is held to the identical contract as
  the Python loop: byte-identical activity traces and equal stats payloads
  against the reference per-uop processor.

Scope: non-distributed frontends (the Python loop serves distributed
configurations).  All steering policies, fetch gates and trace-cache bank
gating/remapping are supported; bank-mapping *control* (share validation,
entry layout) stays in Python and pushes plain entry arrays down.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.thermal_mapping import BankMappingTable
from repro.frontend.trace_cache import TraceCache
from repro.sim.config import (
    MemoryConfig,
    ProcessorConfig,
    SteeringPolicy,
    TraceCacheConfig,
)
from repro.sim.processor import SimulationDeadlockError

#: Must match FP_ABI in ``_native_core.c``; a mismatched cached .so is
#: recompiled, never used.
NATIVE_ABI = 5

_SOURCE = Path(__file__).with_name("_native_core.c")

_POLICY_CODES = {
    SteeringPolicy.DEPENDENCE: 0,
    SteeringPolicy.ROUND_ROBIN: 1,
    SteeringPolicy.LOAD_BALANCE: 2,
}

# Parameter-vector slots, in the exact order of the C enum.
_PARAM_NAMES = (
    "n", "n_lines", "ncl", "nf", "n_blocks",
    "fwidth", "dwidth", "cwidth", "iwidth", "displat",
    "presched_cap", "mp_penalty", "fbuf", "deadlock", "ready_off",
    "ul2_hit", "ul2_miss", "dc_hit", "commit_lag", "rob_cap",
    "qcap0", "qcap1", "qcap2", "qcap3", "mob_cap",
    "int_regs", "fp_regs", "reg_bits", "policy",
    "n_buses", "bus_arb", "bus_xfer", "n_links", "p2p_hop",
    "tc_banks", "tc_sets", "tc_assoc", "tc_map_entries", "tc_build_ovh",
    "ul2_sets", "ul2_assoc", "ul2_line_bytes",
    "dl1_sets", "dl1_assoc", "dl1_line_bytes",
    "num_int_arch", "arch_total", "n_codes",
    "code_copy", "code_load", "code_store",
    "itlb_b", "deco_b", "bp_b", "ul2_b",
)

# Stats-snapshot slots, in the exact order of the C enum; the per-cluster
# dispatch counts follow "disp0".
(
    S_CYCLE, S_FETCHED, S_COMMITTED, S_CCOPIES, S_COPYG, S_COPYREQ,
    S_BRANCHES, S_MISPRED, S_DHITS, S_DMISS, S_UL2H, S_UL2M,
    S_RSTALL, S_ROBSTALL, S_FSTALL,
    S_TC_HITS, S_TC_MISSES, S_TC_INSERTIONS, S_TC_HOPFLUSH,
    S_UL2C_HITS, S_UL2C_MISSES,
    S_FINISHED, S_LAST_COMMIT, S_DL_OCC, S_DL_RQ,
    S_DISP0,
) = range(26)


def native_disabled() -> bool:
    """True when the ``REPRO_NATIVE`` environment kill-switch is set."""
    return os.environ.get("REPRO_NATIVE", "").strip().lower() in (
        "0", "off", "no", "false",
    )


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-native"


_lib: object = False  # False = not tried, None = unavailable, else CDLL


def _configure(lib: ctypes.CDLL) -> None:
    ptr = ctypes.c_void_p
    i64 = ctypes.c_longlong
    lib.fp_abi.restype = i64
    lib.fp_abi.argtypes = []
    lib.fp_param_count.restype = i64
    lib.fp_param_count.argtypes = []
    lib.fp_create.restype = ptr
    lib.fp_create.argtypes = [ptr] * 29
    lib.fp_destroy.restype = None
    lib.fp_destroy.argtypes = [ptr]
    lib.fp_run_to.restype = i64
    lib.fp_run_to.argtypes = [ptr, i64, i64, i64]
    lib.fp_stats.restype = None
    lib.fp_stats.argtypes = [ptr, ptr]
    lib.fp_tc_set_gated.restype = None
    lib.fp_tc_set_gated.argtypes = [ptr, ptr, i64]
    lib.fp_tc_set_map.restype = None
    lib.fp_tc_set_map.argtypes = [ptr, ptr, i64]
    lib.fp_ul2_access.restype = i64
    lib.fp_ul2_access.argtypes = [ptr, i64]
    lib.fp_ul2_warm.restype = None
    lib.fp_ul2_warm.argtypes = [ptr, ptr, i64]
    lib.fp_ul2_reset_stats.restype = None
    lib.fp_ul2_reset_stats.argtypes = [ptr]


def load_library() -> Optional[ctypes.CDLL]:
    """Compile (once, cached) and load the native core; None if unavailable."""
    global _lib
    if _lib is not False:
        return _lib  # type: ignore[return-value]
    _lib = None
    if native_disabled():
        return None
    cc = _compiler()
    if cc is None or not _SOURCE.exists():
        return None
    try:
        source = _SOURCE.read_bytes()
        tag = hashlib.sha256(
            source + f"|abi={NATIVE_ABI}".encode()
        ).hexdigest()[:16]
        cache = _cache_dir()
        so_path = cache / f"repro_core_{tag}.so"
        if not so_path.exists():
            cache.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
            os.close(fd)
            try:
                subprocess.run(
                    [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(_SOURCE)],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                os.replace(tmp, so_path)  # atomic: racing builders converge
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        lib = ctypes.CDLL(str(so_path))
        _configure(lib)
        if lib.fp_abi() != NATIVE_ABI or lib.fp_param_count() != len(_PARAM_NAMES):
            return None
        _lib = lib
        return lib
    except (OSError, subprocess.SubprocessError):
        return None


def native_unavailable_reason(config: ProcessorConfig) -> Optional[str]:
    """Why this configuration cannot use the native core (None = it can)."""
    if native_disabled():
        return "native core disabled via REPRO_NATIVE"
    if config.frontend.is_distributed:
        return "distributed frontends use the Python fast loop"
    if config.backend.num_clusters > 8:
        return "native core supports at most 8 clusters"
    if config.steering_policy not in _POLICY_CODES:
        return f"unsupported steering policy {config.steering_policy!r}"
    return None


def try_create_backend(processor) -> Optional["NativeBackend"]:
    """Backend for a :class:`FastProcessor`, or None (ineligible/unbuildable)."""
    if native_unavailable_reason(processor.config) is not None:
        return None
    lib = load_library()
    if lib is None:
        return None
    return NativeBackend(lib, processor)


def _i64(values) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(values, dtype=np.int64))


def _ptr(arr: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(arr.ctypes.data)


class NativeBackend:
    """Owns one C-side processor state and mirrors it into the Python shell.

    After every ``run_to`` chunk the C counters are drained into the
    processor's :class:`~repro.sim.fast_timing.FastActivity` accumulator and
    its :class:`~repro.sim.stats.SimulationStats` (absolute assignment: the
    C side holds the lifetime totals), so everything downstream — interval
    drains, payloads, serialization — is byte-for-byte the normal path.
    """

    def __init__(self, lib: ctypes.CDLL, processor) -> None:
        self._lib = lib
        self._proc = processor
        config = processor.config
        fe = config.frontend
        be = config.backend
        ic = config.interconnect
        mem = config.memory
        tc = fe.trace_cache
        decoded = processor.decoded
        self._ncl = ncl = be.num_clusters
        n_blocks = len(processor.activity.block_names)
        lines = decoded.lines(tc.line_uops, fe.fetch_width)
        reg_bits = (max(be.int_registers, be.fp_registers) - 1).bit_length()
        ul2_sets = max(1, mem.ul2_kb * 1024 // (mem.line_bytes * mem.ul2_associativity))
        dl1_sets = max(
            1, be.dcache_kb * 1024 // (be.dcache_line_bytes * be.dcache_associativity)
        )
        from repro.workloads.decode import (
            CODE_COPY,
            CODE_LOAD,
            CODE_STORE,
            UOP_CLASS_CODES,
        )

        n_codes = len(UOP_CLASS_CODES)
        params = dict(
            n=decoded.n,
            n_lines=len(lines),
            ncl=ncl,
            nf=fe.num_frontends,
            n_blocks=n_blocks,
            fwidth=fe.fetch_width,
            dwidth=fe.dispatch_width,
            cwidth=fe.commit_width,
            iwidth=be.issue_width_per_queue,
            displat=be.dispatch_latency,
            presched_cap=be.prescheduler_entries * 4,
            mp_penalty=fe.misprediction_penalty,
            fbuf=processor._FRONTEND_BUFFER_LIMIT,
            deadlock=processor._DEADLOCK_THRESHOLD,
            ready_off=processor._ready_offset,
            ul2_hit=mem.ul2_hit_latency,
            ul2_miss=mem.ul2_miss_latency,
            dc_hit=be.dcache_hit_latency,
            commit_lag=1,
            rob_cap=fe.rob_entries,
            qcap0=be.int_queue_entries,
            qcap1=be.fp_queue_entries,
            qcap2=be.mem_queue_entries,
            qcap3=be.copy_queue_entries,
            mob_cap=be.mem_queue_entries,
            int_regs=be.int_registers,
            fp_regs=be.fp_registers,
            reg_bits=reg_bits,
            policy=_POLICY_CODES[config.steering_policy],
            n_buses=ic.num_memory_buses,
            bus_arb=ic.bus_arbitration_latency,
            bus_xfer=ic.bus_latency,
            n_links=ic.num_p2p_links,
            p2p_hop=ic.p2p_hop_latency,
            tc_banks=tc.physical_banks,
            tc_sets=tc.sets_per_bank,
            tc_assoc=tc.associativity,
            tc_map_entries=tc.mapping_table_entries,
            tc_build_ovh=TraceCache.TRACE_BUILD_OVERHEAD,
            ul2_sets=ul2_sets,
            ul2_assoc=mem.ul2_associativity,
            ul2_line_bytes=mem.line_bytes,
            dl1_sets=dl1_sets,
            dl1_assoc=be.dcache_associativity,
            dl1_line_bytes=be.dcache_line_bytes,
            num_int_arch=processor.registers.num_int,
            arch_total=processor.registers.total,
            n_codes=n_codes,
            code_copy=CODE_COPY,
            code_load=CODE_LOAD,
            code_store=CODE_STORE,
            itlb_b=processor._ITLB_B,
            deco_b=processor._DECO_B,
            bp_b=processor._BP_B,
            ul2_b=processor._UL2_B,
        )
        param_arr = _i64([params[name] for name in _PARAM_NAMES])

        fu_flat = [
            processor._FU_B[c][code] for c in range(ncl) for code in range(n_codes)
        ]
        arrays = [
            param_arr,
            _i64(processor._ROB_B),
            _i64(processor._FRONT_OF),
            _i64(processor._RAT_B),
            _i64(processor._TC_B),
            _i64(processor._DL1_B),
            _i64(processor._DTLB_B),
            _i64(processor._IFU_B),
            _i64(processor._FPFU_B),
            _i64(processor._MOB_B),
            _i64(processor._RFB_OF),
            _i64(processor._SCHED_FLAT),
            _i64(processor._QSEL),
            _i64(fu_flat),
            _i64(decoded.cls_list),
            _i64(decoded.latency_list),
            _i64(decoded.mem_addr_list),
            _i64(decoded.is_branch_list),
            _i64(decoded.mispredicted_list),
            _i64(decoded.dest_flat_list),
            _i64(decoded.source_flats),
            _i64(decoded.int_needed_list),
            _i64(decoded.fp_needed_list),
            _i64([line[0] for line in lines]),
            _i64([line[1] for line in lines]),
            _i64([line[2] for line in lines]),
            _i64([line[3] for line in lines]),
            _i64([1 if line[4] else 0 for line in lines]),
        ]
        self._acc_buf = np.zeros(n_blocks, dtype=np.int64)
        arrays.append(self._acc_buf)
        self._keep = arrays  # the C side borrows these buffers
        self._state = lib.fp_create(*[_ptr(a) for a in arrays])
        if not self._state:
            raise MemoryError("native core state allocation failed")
        self._snap = np.zeros(S_DISP0 + ncl, dtype=np.int64)
        self.finished = False

        self.trace_cache = NativeTraceCache(self, tc, mem.ul2_hit_latency)
        self.ul2 = NativeUL2(self, mem)

    def close(self) -> None:
        state, self._state = self._state, None
        if state:
            self._lib.fp_destroy(state)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def run_to(self, target: int) -> None:
        gate = self._proc.fetch_gate
        on, period = gate if gate is not None else (0, 0)
        rc = self._lib.fp_run_to(self._state, target, on, period)
        self._sync()
        if rc == 1:
            snap = self._snap
            old_cycle = int(snap[S_CYCLE]) - 1
            raise SimulationDeadlockError(
                f"no commit for {old_cycle - int(snap[S_LAST_COMMIT])} cycles "
                f"at cycle {old_cycle}; ROB occupancy {int(snap[S_DL_OCC])}, "
                f"rename queue {int(snap[S_DL_RQ])}"
            )
        if rc == 2:  # pragma: no cover - internal invariant violation
            raise RuntimeError("native core exhausted an internal pool")

    def _refresh_snapshot(self) -> np.ndarray:
        self._lib.fp_stats(self._state, _ptr(self._snap))
        return self._snap

    def counter(self, slot: int) -> int:
        return int(self._refresh_snapshot()[slot])

    def _sync(self) -> None:
        snap = self._refresh_snapshot()
        proc = self._proc
        buf = self._acc_buf
        if buf.any():
            acc = proc.activity.acc
            for i, value in enumerate(buf.tolist()):
                if value:
                    acc[i] += value
            buf[:] = 0
        st = proc.stats
        st.cycles = int(snap[S_CYCLE])
        st.fetched_uops = int(snap[S_FETCHED])
        st.committed_uops = int(snap[S_COMMITTED])
        st.committed_copies = int(snap[S_CCOPIES])
        st.copy_uops_generated = int(snap[S_COPYG])
        st.copy_requests_between_frontends = int(snap[S_COPYREQ])
        st.branches = int(snap[S_BRANCHES])
        st.mispredicted_branches = int(snap[S_MISPRED])
        st.dcache_hits = int(snap[S_DHITS])
        st.dcache_misses = int(snap[S_DMISS])
        st.ul2_hits = int(snap[S_UL2H])
        st.ul2_misses = int(snap[S_UL2M])
        st.rename_stall_cycles = int(snap[S_RSTALL])
        st.rob_full_stall_cycles = int(snap[S_ROBSTALL])
        st.fetch_stall_cycles = int(snap[S_FSTALL])
        st.trace_cache_hits = int(snap[S_TC_HITS])
        st.trace_cache_misses = int(snap[S_TC_MISSES])
        disp = st.dispatched_per_cluster
        for c in range(self._ncl):
            value = int(snap[S_DISP0 + c])
            if value:
                disp[c] = value
        proc.cycle = int(snap[S_CYCLE])
        self.finished = bool(snap[S_FINISHED])

    # ------------------------------------------------------------------
    # Cache control plumbing (called by the views)
    # ------------------------------------------------------------------
    def tc_set_gated(self, gated: Sequence[bool]) -> None:
        arr = _i64([1 if g else 0 for g in gated])
        self._lib.fp_tc_set_gated(self._state, _ptr(arr), len(gated))

    def tc_set_map(self, entries: Sequence[int]) -> None:
        arr = _i64(entries)
        self._lib.fp_tc_set_map(self._state, _ptr(arr), len(arr))

    def ul2_access(self, address: int) -> int:
        return int(self._lib.fp_ul2_access(self._state, address))

    def warm_ul2(self, addresses: Sequence[int]) -> None:
        arr = _i64(addresses)
        if len(arr):
            self._lib.fp_ul2_warm(self._state, _ptr(arr), len(arr))
        self._lib.fp_ul2_reset_stats(self._state)


class NativeTraceCache:
    """Control/introspection view over the C-side trace cache.

    Gating and remap *decisions* (validation, share layout, the mapping
    table itself) stay in Python — this class reuses the reference
    :class:`~repro.core.thermal_mapping.BankMappingTable` verbatim and
    pushes the resulting entry array down; the C side only stores lines and
    counts hits, misses and hop flushes.
    """

    TRACE_BUILD_OVERHEAD = TraceCache.TRACE_BUILD_OVERHEAD

    def __init__(
        self, backend: NativeBackend, config: TraceCacheConfig, ul2_hit_latency: int
    ) -> None:
        self._backend = backend
        self.config = config
        self.ul2_hit_latency = ul2_hit_latency
        self._gated = [False] * config.physical_banks
        self.mapping = BankMappingTable(
            config.mapping_table_entries, list(range(config.physical_banks))
        )
        backend.tc_set_map(self.mapping.entries)

    # -- gating / mapping control --------------------------------------
    def set_enabled_banks(self, enabled_banks: Sequence[int]) -> None:
        enabled = set(enabled_banks)
        if not enabled:
            raise ValueError("at least one bank must stay enabled")
        gated = [i not in enabled for i in range(self.config.physical_banks)]
        self._backend.tc_set_gated(gated)
        self._gated = gated

    def enabled_banks(self) -> List[int]:
        return [i for i, g in enumerate(self._gated) if not g]

    def gated_banks(self) -> List[int]:
        return [i for i, g in enumerate(self._gated) if g]

    def set_mapping_shares(self, shares: Dict[int, int]) -> None:
        for bank in shares:
            if not 0 <= bank < self.config.physical_banks:
                raise ValueError(f"bank {bank} out of range")
            if self._gated[bank] and shares[bank] > 0:
                raise ValueError(f"cannot map accesses to gated bank {bank}")
        self.mapping.set_assignment(shares)
        self._backend.tc_set_map(self.mapping.entries)

    def set_balanced_mapping(self) -> None:
        self.mapping.set_balanced(self.enabled_banks())
        self._backend.tc_set_map(self.mapping.entries)

    def bank_for(self, head_pc: int) -> int:
        return self.mapping.bank_for(head_pc)

    # -- counters -------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._backend.counter(S_TC_HITS)

    @property
    def misses(self) -> int:
        return self._backend.counter(S_TC_MISSES)

    @property
    def insertions(self) -> int:
        return self._backend.counter(S_TC_INSERTIONS)

    @property
    def hop_flushes(self) -> int:
        return self._backend.counter(S_TC_HOPFLUSH)

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0


class NativeUL2:
    """Access/counter view over the C-side UL2 model."""

    def __init__(self, backend: NativeBackend, config: MemoryConfig) -> None:
        self._backend = backend
        self.config = config
        self.line_bytes = config.line_bytes
        self.associativity = config.ul2_associativity
        capacity_bytes = config.ul2_kb * 1024
        self.num_sets = max(1, capacity_bytes // (self.line_bytes * self.associativity))
        # Counter setters (the engine resets stats after pre-warming) are
        # implemented as offsets against the monotonic C-side counters.
        self._hits_base = 0
        self._misses_base = 0

    def access(self, address: int) -> int:
        return self._backend.ul2_access(address)

    @property
    def hits(self) -> int:
        return self._backend.counter(S_UL2C_HITS) - self._hits_base

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits_base = self._backend.counter(S_UL2C_HITS) - value

    @property
    def misses(self) -> int:
        return self._backend.counter(S_UL2C_MISSES) - self._misses_base

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses_base = self._backend.counter(S_UL2C_MISSES) - value

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

"""Cycle-level processor model: fetch, rename/steer, dispatch, issue, commit.

The :class:`Processor` advances the whole clustered microarchitecture one
cycle at a time.  It is a *timing and activity* model: data values are never
computed, but structural capacities, occupancies, latencies, inter-cluster
copies and cache behaviour are, and every structure access increments the
activity counter of its floorplan block so the power model can translate the
run into per-block power.

Stage order within a cycle is reversed (commit first, fetch last) so that a
micro-op needs at least one full cycle to traverse each stage.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional, Tuple

from repro.backend.cluster import Cluster
from repro.backend.functional_units import fu_block_suffix, scheduler_block_suffix
from repro.core.distributed_commit import DistributedCommitUnit
from repro.core.distributed_rename import DistributedRenameUnit
from repro.frontend.branch_predictor import BranchPredictor
from repro.frontend.commit import CentralizedCommitUnit, CommitUnit
from repro.frontend.fetch import FetchUnit
from repro.frontend.rename import CentralizedRenameUnit, RenameUnit
from repro.frontend.steering import SteeringUnit
from repro.frontend.trace_cache import TraceCache
from repro.interconnect.p2p import PointToPointNetwork
from repro.isa.microops import MicroOp
from repro.isa.registers import RegisterSpace
from repro.memory.bus import BusPool
from repro.memory.ul2 import UnifiedL2Cache
from repro.sim import blocks
from repro.sim.config import ProcessorConfig
from repro.sim.stats import ActivityCounters, SimulationStats
from repro.sim.uop import DynamicUop, UopState


class SimulationDeadlockError(RuntimeError):
    """Raised when the pipeline makes no forward progress for a long time."""


class Processor:
    """The simulated clustered processor (timing and activity only)."""

    #: Cycles without a single commit after which the simulator declares a
    #: deadlock (generously larger than any legitimate stall).
    _DEADLOCK_THRESHOLD = 200_000
    #: Maximum micro-ops buffered between fetch and rename.
    _FRONTEND_BUFFER_LIMIT = 64

    def __init__(
        self,
        config: ProcessorConfig,
        uop_stream: Iterator[MicroOp],
        register_space: Optional[RegisterSpace] = None,
    ) -> None:
        self.config = config
        self.registers = register_space or RegisterSpace()
        self.cycle = 0
        self.stats = SimulationStats()
        self.activity = ActivityCounters(blocks.all_blocks(config))
        #: Fetch duty gate: ``(on_cycles, period)`` lets fetch run only on
        #: the first ``on_cycles`` of every ``period`` cycles (DTM fetch
        #: throttling).  ``None`` (the default) means fetch is never gated.
        self.fetch_gate: Optional[Tuple[int, int]] = None

        # Backend clusters -------------------------------------------------
        self.clusters: List[Cluster] = [
            Cluster(c, config.backend, config.memory)
            for c in range(config.backend.num_clusters)
        ]
        for cluster in self.clusters:
            cluster.int_rf.block_name = blocks.cluster_block(  # type: ignore[attr-defined]
                cluster.cluster_id, blocks.CLUSTER_INT_RF
            )
            cluster.fp_rf.block_name = blocks.cluster_block(  # type: ignore[attr-defined]
                cluster.cluster_id, blocks.CLUSTER_FP_RF
            )

        # Memory hierarchy and interconnect ---------------------------------
        self.ul2 = UnifiedL2Cache(config.memory)
        self.memory_bus = BusPool(
            "membus",
            config.interconnect.num_memory_buses,
            config.interconnect.bus_latency,
            config.interconnect.bus_arbitration_latency,
        )
        self.disambiguation_bus = BusPool(
            "disbus",
            config.interconnect.num_disambiguation_buses,
            config.interconnect.bus_latency,
            config.interconnect.bus_arbitration_latency,
        )
        self.p2p = PointToPointNetwork(
            config.backend.num_clusters,
            config.interconnect.num_p2p_links,
            config.interconnect.p2p_hop_latency,
        )

        # Frontend -----------------------------------------------------------
        self.trace_cache = TraceCache(
            config.frontend.trace_cache, config.memory.ul2_hit_latency
        )
        self.branch_predictor = BranchPredictor(config.frontend.branch_predictor_entries)
        self.fetch_unit = FetchUnit(
            config.frontend,
            self.trace_cache,
            self.branch_predictor,
            uop_stream,
            self.activity,
            self.stats,
        )
        if config.frontend.is_distributed:
            self.rename_unit: RenameUnit = DistributedRenameUnit(
                config, self.clusters, self.registers, self.activity, self.stats
            )
            self.commit_unit: CommitUnit = DistributedCommitUnit(
                config.frontend.num_frontends,
                config.frontend.rob_entries_per_frontend,
                config.frontend.commit_width,
                config.frontend.distributed_commit_extra_latency,
            )
        else:
            self.rename_unit = CentralizedRenameUnit(
                config, self.clusters, self.registers, self.activity, self.stats
            )
            self.commit_unit = CentralizedCommitUnit(
                config.frontend.rob_entries, config.frontend.commit_width
            )
        self.steering = SteeringUnit(
            config, self.clusters, self.rename_unit.tables, self.registers
        )

        # Pipeline buffers -----------------------------------------------------
        #: Micro-ops in the fetch-to-rename pipeline: (ready_cycle, static uop,
        #: fetch cycle).
        self._decode_pipe: Deque[Tuple[int, MicroOp, int]] = deque()
        #: Micro-ops ready to be renamed, in program order.
        self._rename_queue: Deque[Tuple[MicroOp, int]] = deque()
        self._next_seq = 0
        self._last_commit_cycle = 0
        #: The in-flight mispredicted branch fetch is waiting for, if any.
        self._pending_redirect: Optional[DynamicUop] = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _alloc_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _frontend_latency(self) -> int:
        fe = self.config.frontend
        return fe.trace_cache.fetch_to_dispatch_latency + fe.decode_rename_steer_latency

    def set_fetch_gate(self, on_cycles: int, period: int) -> None:
        """Gate fetch to ``on_cycles`` out of every ``period`` cycles.

        Used by DTM fetch throttling: the rest of the pipeline keeps
        draining (in-flight micro-ops issue, complete and commit), only the
        supply of new micro-ops is rationed.  ``on_cycles`` must be at least
        1 so the pipeline always makes forward progress.
        """
        if period <= 0 or not 1 <= on_cycles <= period:
            raise ValueError("fetch gate needs 1 <= on_cycles <= period")
        self.fetch_gate = (on_cycles, period) if on_cycles < period else None

    def clear_fetch_gate(self) -> None:
        """Remove any DTM fetch gate (fetch runs every cycle again)."""
        self.fetch_gate = None

    @property
    def finished(self) -> bool:
        """Whether the benchmark has fully drained through the pipeline."""
        if not self.fetch_unit.exhausted:
            return False
        if self._decode_pipe or self._rename_queue:
            return False
        if self.commit_unit.occupancy() > 0:
            return False
        for cluster in self.clusters:
            if cluster.dispatch_pipe or cluster.executing or cluster.occupancy():
                return False
        return True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None) -> int:
        """Run until the benchmark drains (or ``max_cycles``); return the cycle count."""
        while not self.finished:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            self.step()
        return self.cycle

    def run_cycles(self, cycles: int) -> bool:
        """Run ``cycles`` more cycles (or until finished); return ``finished``."""
        target = self.cycle + cycles
        while self.cycle < target and not self.finished:
            self.step()
        return self.finished

    def step(self) -> None:
        """Advance the processor by one cycle."""
        cycle = self.cycle
        self._commit_stage(cycle)
        self._complete_stage(cycle)
        self._issue_stage(cycle)
        self._dispatch_arrival_stage(cycle)
        self._rename_stage(cycle)
        self._decode_stage(cycle)
        self._fetch_stage(cycle)
        self.cycle += 1
        self.stats.cycles = self.cycle
        if cycle - self._last_commit_cycle > self._DEADLOCK_THRESHOLD and not self.finished:
            raise SimulationDeadlockError(
                f"no commit for {cycle - self._last_commit_cycle} cycles at cycle {cycle}; "
                f"ROB occupancy {self.commit_unit.occupancy()}, "
                f"rename queue {len(self._rename_queue)}"
            )

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def _commit_stage(self, cycle: int) -> None:
        committed = self.commit_unit.commit(cycle)
        if committed:
            self._last_commit_cycle = cycle
        for uop in committed:
            frontend = uop.frontend_id
            rob = blocks.rob_block(frontend, self.config.frontend.num_frontends)
            self.activity.record(rob)  # reorder buffer read at commit
            self.rename_unit.release_at_commit(uop)
            cluster = self.clusters[uop.cluster]
            cluster.in_flight -= 1
            self.stats.committed_uops += 1
            if uop.is_mem:
                self._release_memory_slots(uop)
            if uop.is_store:
                # Store data is written to the local data cache at commit.
                cluster.dcache.access(uop.static.mem_addr, is_store=True)
                self.activity.record(
                    blocks.cluster_block(uop.cluster, blocks.CLUSTER_DCACHE)
                )

    def _release_memory_slots(self, uop: DynamicUop) -> None:
        if uop.is_store:
            for cluster in self.clusters:
                cluster.mob.release()
        else:
            self.clusters[uop.cluster].mob.release()

    # ------------------------------------------------------------------
    # Completion / writeback
    # ------------------------------------------------------------------
    def _complete_stage(self, cycle: int) -> None:
        for cluster in self.clusters:
            if not cluster.executing:
                continue
            still_running: List[Tuple[int, DynamicUop]] = []
            for completion_cycle, uop in cluster.executing:
                if completion_cycle > cycle:
                    still_running.append((completion_cycle, uop))
                    continue
                uop.complete_cycle = completion_cycle
                uop.state = UopState.COMPLETED
                if uop.dest_ref is not None:
                    regfile, _ = uop.dest_ref
                    block_name = getattr(regfile, "block_name", None)
                    if block_name:
                        self.activity.record(block_name)  # result writeback
                if uop.is_copy:
                    # The copy has delivered the value to the destination
                    # cluster; it leaves the pipeline immediately (it holds no
                    # ROB entry).
                    self.clusters[uop.cluster].in_flight -= 1
                    self.stats.committed_copies += 1
                if uop.is_branch and uop.mispredicted and self._pending_redirect is uop:
                    resume = completion_cycle + self.config.frontend.misprediction_penalty
                    self.fetch_unit.redirect(resume)
                    self._pending_redirect = None
            cluster.executing = still_running

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------
    def _issue_stage(self, cycle: int) -> None:
        for cluster in self.clusters:
            for queue in cluster.all_queues():
                for uop in queue.issue(cycle):
                    self._execute(cluster, uop, cycle)

    def _execute(self, cluster: Cluster, uop: DynamicUop, cycle: int) -> None:
        uop.issue_cycle = cycle
        uop.state = UopState.ISSUED
        cid = cluster.cluster_id
        # Scheduler (wakeup/select) activity.
        self.activity.record(
            blocks.cluster_block(cid, scheduler_block_suffix(uop.uop_class))
        )
        # Source operand reads.
        for regfile, _ in uop.src_refs:
            block_name = getattr(regfile, "block_name", None)
            if block_name:
                self.activity.record(block_name)

        latency = uop.latency
        if uop.is_copy:
            latency = self._execute_copy(cluster, uop, cycle)
        elif uop.is_load:
            latency = self._execute_load(cluster, uop, cycle)
        elif uop.is_store:
            latency = self._execute_store(cluster, uop, cycle)
        else:
            self.activity.record(
                blocks.cluster_block(cid, fu_block_suffix(uop.uop_class))
            )

        completion = cycle + max(1, latency)
        if uop.dest_ref is not None:
            regfile, index = uop.dest_ref
            regfile.set_ready(index, completion)
        cluster.executing.append((completion, uop))

    def _execute_copy(self, cluster: Cluster, uop: DynamicUop, cycle: int) -> int:
        """Copy micro-op: read locally, traverse the p2p link, write remotely."""
        arrival = self.p2p.transfer(cycle + 1, uop.cluster, uop.copy_dest_cluster)
        return max(1, arrival - cycle)

    def _execute_load(self, cluster: Cluster, uop: DynamicUop, cycle: int) -> int:
        cid = cluster.cluster_id
        address = uop.static.mem_addr
        self.activity.record(blocks.cluster_block(cid, blocks.CLUSTER_DTLB))
        self.activity.record(blocks.cluster_block(cid, blocks.CLUSTER_DCACHE))
        self.activity.record(blocks.cluster_block(cid, fu_block_suffix(uop.uop_class)))
        hit = cluster.dcache.access(address, is_store=False)
        if hit:
            self.stats.dcache_hits += 1
            return cluster.dcache.hit_latency
        self.stats.dcache_misses += 1
        # Miss: arbitration for a memory bus, then the UL2 (possibly memory).
        bus_done = self.memory_bus.request(cycle)
        ul2_latency = self.ul2.access(address)
        if ul2_latency > self.config.memory.ul2_hit_latency:
            self.stats.ul2_misses += 1
        else:
            self.stats.ul2_hits += 1
        self.activity.record(blocks.UL2)
        return (bus_done - cycle) + ul2_latency + cluster.dcache.hit_latency

    def _execute_store(self, cluster: Cluster, uop: DynamicUop, cycle: int) -> int:
        cid = cluster.cluster_id
        self.activity.record(blocks.cluster_block(cid, blocks.CLUSTER_DTLB))
        self.activity.record(blocks.cluster_block(cid, fu_block_suffix(uop.uop_class)))
        # Address computed: broadcast it on a disambiguation bus so every
        # cluster's MOB can disambiguate locally.
        self.disambiguation_bus.request(cycle)
        for other in self.clusters:
            other.mob.record_disambiguation()
            self.activity.record(
                blocks.cluster_block(other.cluster_id, blocks.CLUSTER_MOB)
            )
        return 1

    # ------------------------------------------------------------------
    # Dispatch arrival (rename -> issue queues after the dispatch latency)
    # ------------------------------------------------------------------
    def _dispatch_arrival_stage(self, cycle: int) -> None:
        for cluster in self.clusters:
            while cluster.dispatch_pipe:
                arrival, uop = cluster.dispatch_pipe[0]
                if arrival > cycle:
                    break
                queue = cluster.queue_for(uop.uop_class)
                if not queue.has_space():
                    break  # backpressure: retry next cycle, order preserved
                cluster.dispatch_pipe.popleft()
                queue.insert(uop)
                uop.dispatch_cycle = cycle
                uop.state = UopState.DISPATCHED
                # Scheduler write (dispatch into the queue).
                self.activity.record(
                    blocks.cluster_block(
                        cluster.cluster_id, scheduler_block_suffix(uop.uop_class)
                    )
                )

    # ------------------------------------------------------------------
    # Rename / steer / dispatch
    # ------------------------------------------------------------------
    def _rename_stage(self, cycle: int) -> None:
        width = self.config.frontend.dispatch_width
        renamed = 0
        while self._rename_queue and renamed < width:
            static, fetch_cycle = self._rename_queue[0]
            decision = self.steering.choose(static)
            cluster_id = decision.cluster
            cluster = self.clusters[cluster_id]
            frontend = self.config.frontend_of_cluster(cluster_id)

            if not self.commit_unit.can_allocate(frontend):
                self.stats.rob_full_stall_cycles += 1
                break
            if not self.rename_unit.can_rename(static, cluster_id):
                self.stats.rename_stall_cycles += 1
                break
            if not cluster.prescheduler_has_space():
                self.stats.rename_stall_cycles += 1
                break
            if static.is_store and not all(c.mob.can_allocate() for c in self.clusters):
                self.stats.rename_stall_cycles += 1
                break
            if static.is_load and not cluster.mob.can_allocate():
                self.stats.rename_stall_cycles += 1
                break

            self._rename_queue.popleft()
            dynamic = DynamicUop(static, self._alloc_seq())
            dynamic.fetch_cycle = fetch_cycle
            outcome = self.rename_unit.rename(dynamic, cluster_id, cycle, self._alloc_seq)

            # Reorder buffer allocation (program micro-ops only; copies are
            # handled entirely inside the backend).
            self.commit_unit.allocate(dynamic)
            self.activity.record(
                blocks.rob_block(frontend, self.config.frontend.num_frontends)
            )

            # Memory order buffer slots.
            if static.is_store:
                for other in self.clusters:
                    other.mob.allocate()
                    self.activity.record(
                        blocks.cluster_block(other.cluster_id, blocks.CLUSTER_MOB)
                    )
            elif static.is_load:
                cluster.mob.allocate()
                self.activity.record(
                    blocks.cluster_block(cluster_id, blocks.CLUSTER_MOB)
                )

            arrival = cycle + self.config.backend.dispatch_latency
            cluster.dispatch_pipe.append((arrival, dynamic))
            cluster.in_flight += 1
            self.stats.record_dispatch(cluster_id)
            if dynamic.is_branch and dynamic.mispredicted and self._pending_redirect is None:
                self._pending_redirect = dynamic

            for copy in outcome.copies:
                source_cluster = self.clusters[copy.cluster]
                copy_arrival = arrival
                if copy.frontend_id != dynamic.frontend_id:
                    # Inter-frontend copy request (Section 3.1.1): the request
                    # is generated at steering and the owning frontend issues
                    # the copy one cycle later.
                    copy_arrival += 1
                source_cluster.dispatch_pipe.append((copy_arrival, copy))
                source_cluster.in_flight += 1
            renamed += 1

    # ------------------------------------------------------------------
    # Decode (fixed frontend latency between fetch and rename)
    # ------------------------------------------------------------------
    def _decode_stage(self, cycle: int) -> None:
        while self._decode_pipe and self._decode_pipe[0][0] <= cycle:
            if len(self._rename_queue) >= self._FRONTEND_BUFFER_LIMIT:
                break
            _, static, fetch_cycle = self._decode_pipe.popleft()
            self._rename_queue.append((static, fetch_cycle))

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------
    def _fetch_stage(self, cycle: int) -> None:
        gate = self.fetch_gate
        if gate is not None and (cycle % gate[1]) >= gate[0]:
            # DTM fetch throttling: this is a gated fetch slot.
            self.stats.fetch_stall_cycles += 1
            return
        buffered = len(self._decode_pipe) + len(self._rename_queue)
        if buffered >= self._FRONTEND_BUFFER_LIMIT:
            return
        latency = self._frontend_latency()
        for static in self.fetch_unit.fetch(cycle):
            self._decode_pipe.append((cycle + latency, static, cycle))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe_state(self) -> str:
        """One-line summary of the pipeline state (debugging aid)."""
        return (
            f"cycle {self.cycle}: fetched {self.stats.fetched_uops}, "
            f"committed {self.stats.committed_uops}, ROB {self.commit_unit.occupancy()}, "
            f"rename queue {len(self._rename_queue)}"
        )

"""Result containers produced by a simulation run.

A :class:`SimulationResult` couples the timing statistics of a run with the
per-interval power and temperature traces of every functional block, and
computes the three temperature metrics the paper reports (Section 4):

* ``AbsMax`` — peak temperature over time and space,
* ``Average`` — average temperature over time and space,
* ``AvgMax`` — average over intervals of the per-interval maximum.

All metrics are reported as the *increase over ambient* (45 C), because the
paper measures improvements as "the reduction on the temperature increase
over ambient".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.sim.stats import SimulationStats


class IntervalRecord:
    """Power and temperature snapshot of one thermal interval.

    The engine's fast path stores the per-block data as NumPy vectors (see
    :meth:`from_arrays`) so that recording an interval allocates no per-block
    dictionaries; the ``dynamic_power`` / ``leakage_power`` / ``temperature``
    mappings are materialized lazily — and cached — the first time a consumer
    (metrics, serialization, plots) asks for them.  Records can equally be
    built from plain dictionaries, which is what deserialization and the
    tests do.
    """

    __slots__ = (
        "cycle",
        "seconds",
        "_block_names",
        "_dynamic_array",
        "_leakage_array",
        "_temperature_array",
        "_dynamic_dict",
        "_leakage_dict",
        "_temperature_dict",
    )

    def __init__(
        self,
        cycle: int,
        seconds: float,
        dynamic_power: Mapping[str, float],
        leakage_power: Mapping[str, float],
        temperature: Mapping[str, float],
    ) -> None:
        #: Cycle at which the interval ended.
        self.cycle = cycle
        #: Wall-clock seconds of simulated (thermal) time at the interval's end.
        self.seconds = seconds
        self._block_names: Optional[Sequence[str]] = None
        self._dynamic_array: Optional[np.ndarray] = None
        self._leakage_array: Optional[np.ndarray] = None
        self._temperature_array: Optional[np.ndarray] = None
        self._dynamic_dict: Optional[Dict[str, float]] = dict(dynamic_power)
        self._leakage_dict: Optional[Dict[str, float]] = dict(leakage_power)
        self._temperature_dict: Optional[Dict[str, float]] = dict(temperature)

    @classmethod
    def from_arrays(
        cls,
        cycle: int,
        seconds: float,
        block_names: Sequence[str],
        dynamic_power: np.ndarray,
        leakage_power: np.ndarray,
        temperature: np.ndarray,
    ) -> "IntervalRecord":
        """Zero-dict constructor used by the engine's interval fast path.

        The arrays are stored as-is (not copied): callers hand over freshly
        computed vectors, ordered like ``block_names``, and must not mutate
        them afterwards.
        """
        record = cls.__new__(cls)
        record.cycle = cycle
        record.seconds = seconds
        record._block_names = block_names
        record._dynamic_array = dynamic_power
        record._leakage_array = leakage_power
        record._temperature_array = temperature
        record._dynamic_dict = None
        record._leakage_dict = None
        record._temperature_dict = None
        return record

    @staticmethod
    def _as_dict(names: Sequence[str], values: np.ndarray) -> Dict[str, float]:
        return {name: float(values[i]) for i, name in enumerate(names)}

    @property
    def dynamic_power(self) -> Dict[str, float]:
        """Dynamic power per block (Watts) during the interval."""
        if self._dynamic_dict is None:
            self._dynamic_dict = self._as_dict(self._block_names, self._dynamic_array)
        return self._dynamic_dict

    @property
    def leakage_power(self) -> Dict[str, float]:
        """Leakage power per block (Watts) during the interval."""
        if self._leakage_dict is None:
            self._leakage_dict = self._as_dict(self._block_names, self._leakage_array)
        return self._leakage_dict

    @property
    def temperature(self) -> Dict[str, float]:
        """Temperature per block (Celsius) at the end of the interval."""
        if self._temperature_dict is None:
            self._temperature_dict = self._as_dict(
                self._block_names, self._temperature_array
            )
        return self._temperature_dict

    def total_power(self) -> float:
        """Total processor power (dynamic + leakage) during the interval."""
        if self._dynamic_array is not None and self._leakage_array is not None:
            return float(np.sum(self._dynamic_array) + np.sum(self._leakage_array))
        return sum(self.dynamic_power.values()) + sum(self.leakage_power.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntervalRecord(cycle={self.cycle}, seconds={self.seconds}, "
            f"blocks={len(self.temperature)})"
        )


#: The three temperature metrics of the paper's figures.
METRIC_NAMES = ("AbsMax", "Average", "AvgMax")


@dataclass
class SimulationResult:
    """Complete outcome of simulating one benchmark on one configuration."""

    config_name: str
    benchmark: str
    stats: SimulationStats
    block_names: Sequence[str]
    block_groups: Mapping[str, Sequence[str]]
    block_areas_mm2: Mapping[str, float]
    intervals: List[IntervalRecord] = field(default_factory=list)
    ambient_celsius: float = 45.0
    warmup_temperature: Dict[str, float] = field(default_factory=dict)
    #: How the run was produced: the thermal/hop interval in cycles plus the
    #: experiment-settings parameters (trace length, seed) the campaign layer
    #: derives cache keys from.  Empty for results loaded from pre-provenance
    #: (schema version 1) files.
    provenance: Dict[str, object] = field(default_factory=dict)
    #: Dynamic-thermal-management telemetry of the run (schema version 3):
    #: policy name, ``throttle_ratio`` (fraction of fetch capacity removed),
    #: ``gated_intervals``, ``dvfs_residency`` (fraction of block-intervals
    #: per VF step, keyed by frequency ratio) and ``mean_freq_ratio``.
    #: Empty when the run had no DTM policy or predates schema version 3.
    dtm: Dict[str, object] = field(default_factory=dict)
    #: Chip-multiprocessor telemetry (schema version 4): core count, per-core
    #: benchmarks and timing/temperature summaries, chip-level DTM policy and
    #: migration log, and chip aggregates (total micro-ops, chip IPC, peak
    #: temperature).  Empty for single-core runs (every run before the chip
    #: layer existed, and every ``repro.sim.engine`` run since).
    chip: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Temperature metrics
    # ------------------------------------------------------------------
    def _group_blocks(self, group: str) -> Sequence[str]:
        if group in self.block_groups:
            return self.block_groups[group]
        if group in self.block_names:
            return [group]
        raise KeyError(
            f"unknown block or group {group!r}; known groups: "
            f"{sorted(self.block_groups)}"
        )

    def temperature_metrics(self, group: str) -> Dict[str, float]:
        """Return AbsMax / Average / AvgMax for a block group.

        Values are temperature increases over ambient, in Celsius.
        """
        blocks = self._group_blocks(group)
        if not self.intervals:
            raise ValueError("no thermal intervals were recorded")
        amb = self.ambient_celsius
        per_interval_max: List[float] = []
        per_interval_avg: List[float] = []
        abs_max = float("-inf")
        for record in self.intervals:
            temps = [record.temperature[b] for b in blocks]
            interval_max = max(temps)
            per_interval_max.append(interval_max - amb)
            per_interval_avg.append(sum(temps) / len(temps) - amb)
            abs_max = max(abs_max, interval_max)
        return {
            "AbsMax": abs_max - amb,
            "Average": sum(per_interval_avg) / len(per_interval_avg),
            "AvgMax": sum(per_interval_max) / len(per_interval_max),
        }

    def all_temperature_metrics(self) -> Dict[str, Dict[str, float]]:
        """Metrics for every defined block group."""
        return {group: self.temperature_metrics(group) for group in self.block_groups}

    def peak_temperature(self) -> float:
        """Absolute peak temperature (Celsius) over all blocks and intervals."""
        return max(
            max(record.temperature.values()) for record in self.intervals
        ) if self.intervals else self.ambient_celsius

    # ------------------------------------------------------------------
    # Power metrics
    # ------------------------------------------------------------------
    def average_power(self, blocks: Optional[Sequence[str]] = None) -> float:
        """Average total power (W) over the run, optionally restricted to blocks."""
        if not self.intervals:
            return 0.0
        names = list(blocks) if blocks is not None else list(self.block_names)
        total = 0.0
        for record in self.intervals:
            total += sum(record.dynamic_power[b] + record.leakage_power[b] for b in names)
        return total / len(self.intervals)

    def average_group_power(self, group: str) -> float:
        """Average power (W) of a block group."""
        return self.average_power(self._group_blocks(group))

    def average_dynamic_power(self, blocks: Optional[Sequence[str]] = None) -> float:
        """Average dynamic power (W) over the run."""
        if not self.intervals:
            return 0.0
        names = list(blocks) if blocks is not None else list(self.block_names)
        total = 0.0
        for record in self.intervals:
            total += sum(record.dynamic_power[b] for b in names)
        return total / len(self.intervals)

    def group_area_mm2(self, group: str) -> float:
        """Total silicon area (mm^2) of a block group."""
        return sum(self.block_areas_mm2[b] for b in self._group_blocks(group))

    # ------------------------------------------------------------------
    # Comparisons against a baseline run (the paper's reporting style)
    # ------------------------------------------------------------------
    def temperature_reduction_vs(self, baseline: "SimulationResult", group: str) -> Dict[str, float]:
        """Fractional reduction of temperature-over-ambient relative to ``baseline``.

        A value of 0.32 for ``AbsMax`` means the peak temperature increase
        over ambient is 32% lower than the baseline's — the quantity plotted
        in Figures 12-14 of the paper.
        """
        ours = self.temperature_metrics(group)
        theirs = baseline.temperature_metrics(group)
        reductions = {}
        for metric in METRIC_NAMES:
            base = theirs[metric]
            reductions[metric] = (base - ours[metric]) / base if base > 0 else 0.0
        return reductions

    def slowdown_vs(self, baseline: "SimulationResult") -> float:
        """Execution-time increase relative to ``baseline`` (0.02 = 2% slower).

        Measured in cycles, so it captures throttling-induced IPC loss but
        not DVFS wall-clock stretching; for DTM comparisons use
        :meth:`time_slowdown_vs`.
        """
        if baseline.stats.cycles <= 0:
            return 0.0
        return self.stats.cycles / baseline.stats.cycles - 1.0

    def total_seconds(self) -> float:
        """Simulated wall-clock seconds the run spanned.

        Includes whole clock-gated intervals (which add wall-clock but no
        cycles), so it is the denominator of real DTM performance: the same
        trace under throttling, DVFS or gating simply takes longer.

        The per-record ``seconds`` timestamps count whole nominal intervals,
        but the *final* interval of a trace usually runs fewer cycles; this
        method reconstructs each interval's true duration from the recorded
        cycle deltas (a zero delta is a clock-gated interval, charged one
        full interval), so short runs don't quantize the performance-loss
        metric to whole intervals.  Results without interval provenance
        (schema v1 files) fall back to the nominal accounting.
        """
        if not self.intervals:
            return 0.0
        interval_cycles = self.provenance.get("interval_cycles")
        if not interval_cycles:
            return self._nominal_total_seconds()
        interval_seconds = self.intervals[0].seconds
        total = 0.0
        previous_cycle = 0
        for record in self.intervals:
            delta = record.cycle - previous_cycle
            previous_cycle = record.cycle
            if delta == 0:
                total += interval_seconds
            else:
                total += interval_seconds * (delta / interval_cycles)
        return total

    def _nominal_total_seconds(self) -> float:
        """Run length in whole nominal intervals (the per-record timestamps)."""
        return self.intervals[-1].seconds if self.intervals else 0.0

    def time_slowdown_vs(self, baseline: "SimulationResult") -> float:
        """Wall-clock-time increase relative to ``baseline`` (0.05 = 5% slower).

        The DTM performance-loss metric: unlike :meth:`slowdown_vs` (cycles)
        it also charges whole clock-gated intervals, which stretch
        wall-clock without adding cycles.

        Both sides must use the same accounting: when either result lacks
        interval provenance (schema v1 files), the comparison falls back to
        whole-interval accounting for both, instead of silently comparing
        an exact duration against a quantized one.
        """
        exact = (
            self.provenance.get("interval_cycles")
            and baseline.provenance.get("interval_cycles")
        )
        if exact:
            ours, base = self.total_seconds(), baseline.total_seconds()
        else:
            ours = self._nominal_total_seconds()
            base = baseline._nominal_total_seconds()
        if base <= 0:
            return 0.0
        return ours / base - 1.0

    def summary(self) -> str:
        """Short human-readable summary of the run."""
        lines = [
            f"{self.benchmark} on {self.config_name}: "
            f"{self.stats.committed_uops} uops in {self.stats.cycles} cycles "
            f"(IPC {self.stats.ipc:.2f})",
            f"  avg power {self.average_power():.1f} W, "
            f"peak temperature {self.peak_temperature():.1f} C",
        ]
        return "\n".join(lines)

"""JSON serialization of simulation results and experiment summaries.

Long experiment campaigns (all 26 workloads, several configurations) are
expensive in pure Python, so the results are worth persisting.  The format is
plain JSON with an explicit schema version; loading reconstructs a
:class:`~repro.sim.results.SimulationResult` that supports the same metric
queries as a freshly simulated one.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Union

from repro.sim.results import IntervalRecord, SimulationResult
from repro.sim.stats import SimulationStats

#: Version stamp written into every file so future schema changes are detectable.
#: Version 2 added the ``provenance`` mapping (thermal interval in cycles plus
#: the experiment-settings parameters of the run) that the campaign result
#: cache keys depend on; version 3 added the ``dtm`` mapping (DTM policy name,
#: interval/engagement counts, throttle ratio, DVFS step residency and mean
#: frequency ratio); version 4 added the ``chip`` mapping (core count,
#: per-core benchmarks and summaries, chip DTM policy, migration log and
#: chip aggregates) written by multi-core runs.  Files of any earlier
#: version still load, with the missing mappings empty.
SCHEMA_VERSION = 4

#: Schema versions :func:`result_from_dict` can reconstruct.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4)


def result_to_dict(result: SimulationResult) -> Dict:
    """Convert a :class:`SimulationResult` to a JSON-serializable dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "provenance": dict(result.provenance),
        "dtm": dict(result.dtm),
        "chip": dict(result.chip),
        "config_name": result.config_name,
        "benchmark": result.benchmark,
        "ambient_celsius": result.ambient_celsius,
        "block_names": list(result.block_names),
        "block_groups": {group: list(names) for group, names in result.block_groups.items()},
        "block_areas_mm2": dict(result.block_areas_mm2),
        "warmup_temperature": dict(result.warmup_temperature),
        "stats": result.stats.to_payload(),
        "intervals": [
            {
                "cycle": record.cycle,
                "seconds": record.seconds,
                "dynamic_power": record.dynamic_power,
                "leakage_power": record.leakage_power,
                "temperature": record.temperature,
            }
            for record in result.intervals
        ],
    }


def result_from_dict(data: Dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` output."""
    version = data.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported result schema version {version!r} "
            f"(supported: {SUPPORTED_SCHEMA_VERSIONS})"
        )
    stats = SimulationStats.from_payload(data["stats"])
    intervals = [
        IntervalRecord(
            cycle=entry["cycle"],
            seconds=entry["seconds"],
            dynamic_power=entry["dynamic_power"],
            leakage_power=entry["leakage_power"],
            temperature=entry["temperature"],
        )
        for entry in data["intervals"]
    ]
    return SimulationResult(
        config_name=data["config_name"],
        benchmark=data["benchmark"],
        stats=stats,
        block_names=data["block_names"],
        block_groups=data["block_groups"],
        block_areas_mm2=data["block_areas_mm2"],
        intervals=intervals,
        ambient_celsius=data["ambient_celsius"],
        warmup_temperature=data.get("warmup_temperature", {}),
        # Absent from schema-version-1 files; such results are still fully
        # usable for metric queries, they just cannot seed the result cache.
        provenance=data.get("provenance", {}),
        # Absent before schema version 3 (and from runs without a DTM policy).
        dtm=data.get("dtm", {}),
        # Absent before schema version 4 (and from single-core runs).
        chip=data.get("chip", {}),
    )


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + :func:`os.replace`).

    The temporary file lives in the target directory (``os.replace`` must
    not cross filesystems) and its name embeds pid and thread id, so
    concurrent writers — two campaign workers storing an identically-keyed
    cell, or the service's janitor racing a store — never collide on the
    scratch file either.  The result is last-writer-wins: a reader observes
    either the old complete document or the new one, never a torn write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.parent / (
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        scratch.write_text(text)
        os.replace(scratch, path)
    finally:
        if scratch.exists():  # pragma: no cover - only on a failed replace
            scratch.unlink()
    return path


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Binary twin of :func:`atomic_write_text` (temp file + ``os.replace``).

    Same guarantees: the scratch file lives next to the target, its name
    embeds pid and thread id, the final rename is atomic and
    last-writer-wins.  Used for the campaign cache's binary trace artifacts
    (``*.trace.bin``).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.parent / (
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        scratch.write_bytes(data)
        os.replace(scratch, path)
    finally:
        if scratch.exists():  # pragma: no cover - only on a failed replace
            scratch.unlink()
    return path


def save_result(result: SimulationResult, path: Union[str, Path]) -> Path:
    """Write a result to ``path`` as JSON; returns the path.

    The write is atomic (see :func:`atomic_write_text`): concurrent writers
    of the same path race to a last-writer-wins outcome, and a reader can
    never observe a torn, half-written JSON document.
    """
    return atomic_write_text(
        path, json.dumps(result_to_dict(result), indent=2, sort_keys=True)
    )


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Load a result previously written by :func:`save_result`."""
    data = json.loads(Path(path).read_text())
    return result_from_dict(data)

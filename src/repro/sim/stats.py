"""Activity counters and aggregate simulation statistics.

The power model of the paper (Section 2.1) associates an activity counter
with each functional block; energy is the activity count multiplied by the
block's energy per operation.  :class:`ActivityCounters` implements exactly
that: pipeline stages call :meth:`ActivityCounters.record` as they operate,
and at every thermal interval the power model drains the per-interval counts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.sim.block_index import BlockIndex


class ActivityCounters:
    """Per-block activity counters with interval and cumulative views."""

    def __init__(self, block_names: Iterable[str]) -> None:
        self._blocks = tuple(block_names)
        known = set(self._blocks)
        if len(known) != len(self._blocks):
            raise ValueError("duplicate block names in activity counters")
        self._known = known
        self._interval: Dict[str, int] = defaultdict(int)
        self._total: Dict[str, int] = defaultdict(int)

    @property
    def block_names(self) -> tuple:
        return self._blocks

    def record(self, block: str, count: int = 1) -> None:
        """Add ``count`` accesses to ``block`` for the current interval."""
        if block not in self._known:
            raise KeyError(f"unknown block {block!r}")
        self._interval[block] += count
        self._total[block] += count

    def interval_counts(self) -> Dict[str, int]:
        """Counts accumulated since the last :meth:`end_interval` call."""
        return {name: self._interval.get(name, 0) for name in self._blocks}

    def total_counts(self) -> Dict[str, int]:
        """Counts accumulated since the beginning of the simulation."""
        return {name: self._total.get(name, 0) for name in self._blocks}

    def end_interval(self) -> Dict[str, int]:
        """Return the per-interval counts and reset them."""
        snapshot = self.interval_counts()
        self._interval.clear()
        return snapshot

    def end_interval_array(self, index: Optional[BlockIndex] = None) -> np.ndarray:
        """Drain the per-interval counts into a vector laid out by ``index``.

        The fast-path equivalent of :meth:`end_interval`: the engine hands the
        counts straight to the vectorized power model without building a
        per-block dictionary.  ``index`` defaults to this counter's own block
        order; blocks the index knows but this counter does not (or vice
        versa) simply read as zero, matching the dict path's ``.get(b, 0)``.
        """
        names = index.names if index is not None else self._blocks
        counts = np.zeros(len(names), dtype=np.int64)
        interval = self._interval
        for i, name in enumerate(names):
            value = interval.get(name)
            if value:
                counts[i] = value
        interval.clear()
        return counts


@dataclass
class SimulationStats:
    """Aggregate timing statistics of one simulation run."""

    cycles: int = 0
    fetched_uops: int = 0
    committed_uops: int = 0
    committed_copies: int = 0
    copy_uops_generated: int = 0
    copy_requests_between_frontends: int = 0
    branches: int = 0
    mispredicted_branches: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    trace_cache_hop_flushes: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0
    ul2_hits: int = 0
    ul2_misses: int = 0
    rename_stall_cycles: int = 0
    rob_full_stall_cycles: int = 0
    fetch_stall_cycles: int = 0
    dispatched_per_cluster: Dict[int, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed (program) micro-ops per cycle."""
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def trace_cache_hit_rate(self) -> float:
        accesses = self.trace_cache_hits + self.trace_cache_misses
        return self.trace_cache_hits / accesses if accesses else 0.0

    @property
    def dcache_hit_rate(self) -> float:
        accesses = self.dcache_hits + self.dcache_misses
        return self.dcache_hits / accesses if accesses else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredicted_branches / self.branches if self.branches else 0.0

    def to_payload(self) -> Dict[str, object]:
        """Full JSON-ready snapshot of every field (mutable containers copied).

        The single serializer of a stats object: both result files
        (:mod:`repro.sim.serialization`) and activity-trace documents
        (:mod:`repro.sim.activity_trace`) write this shape, and
        :meth:`from_payload` restores it — including the integer keys of
        ``dispatched_per_cluster``, which JSON turns into strings.
        """
        return {
            key: (dict(value) if isinstance(value, dict) else value)
            for key, value in self.__dict__.items()
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "SimulationStats":
        """Rebuild a stats object from :meth:`to_payload` (or JSON thereof)."""
        stats = cls()
        for key, value in payload.items():
            if key == "dispatched_per_cluster":
                value = {int(cluster): count for cluster, count in value.items()}
            setattr(stats, key, value)
        return stats

    def clone(self) -> "SimulationStats":
        """An independent copy (mutable containers included).

        Replayed cells share one captured :class:`~repro.sim.activity_trace.
        ActivityTrace`; each resulting :class:`~repro.sim.results.
        SimulationResult` gets its own stats object so late mutation (the
        engine patches trace-cache totals at the end of a run) can never
        leak between cells.
        """
        return SimulationStats(**self.to_payload())

    def record_dispatch(self, cluster: int) -> None:
        self.dispatched_per_cluster[cluster] = (
            self.dispatched_per_cluster.get(cluster, 0) + 1
        )

    def cluster_balance(self) -> Dict[int, float]:
        """Fraction of dispatched micro-ops steered to each cluster."""
        total = sum(self.dispatched_per_cluster.values())
        if not total:
            return {c: 0.0 for c in self.dispatched_per_cluster}
        return {c: n / total for c, n in sorted(self.dispatched_per_cluster.items())}

    def as_dict(self) -> Mapping[str, float]:
        """Flat dictionary view used by reports and tests."""
        return {
            "cycles": self.cycles,
            "fetched_uops": self.fetched_uops,
            "committed_uops": self.committed_uops,
            "committed_copies": self.committed_copies,
            "copy_uops_generated": self.copy_uops_generated,
            "copy_requests_between_frontends": self.copy_requests_between_frontends,
            "branches": self.branches,
            "mispredicted_branches": self.mispredicted_branches,
            "ipc": self.ipc,
            "trace_cache_hit_rate": self.trace_cache_hit_rate,
            "dcache_hit_rate": self.dcache_hit_rate,
            "ul2_hits": self.ul2_hits,
            "ul2_misses": self.ul2_misses,
            "rename_stall_cycles": self.rename_stall_cycles,
            "rob_full_stall_cycles": self.rob_full_stall_cycles,
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "trace_cache_hop_flushes": self.trace_cache_hop_flushes,
        }

"""Dynamic micro-op record used by the pipeline."""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.isa.microops import MicroOp, UopClass


class UopState(enum.Enum):
    """Lifecycle of a dynamic micro-op inside the pipeline."""

    FETCHED = "fetched"
    RENAMED = "renamed"
    DISPATCHED = "dispatched"
    ISSUED = "issued"
    COMPLETED = "completed"
    COMMITTED = "committed"


class DynamicUop:
    """A micro-op in flight, with its renaming and timing state.

    The simulator does not track data values — only the *readiness time* of
    physical registers — so the dynamic record carries the renamed physical
    source/destination references, the cycle at which each pipeline event
    happened, and the steering decision (backend cluster and owning frontend
    partition).

    Physical register references are ``(register_file, index)`` pairs, where
    the register file belongs to the micro-op's cluster (copies create a
    local physical copy of remote values, so sources are always local).
    """

    __slots__ = (
        "static",
        "seq",
        "cluster",
        "frontend_id",
        "dest_ref",
        "src_refs",
        "prev_mappings",
        "state",
        "fetch_cycle",
        "rename_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        "is_copy",
        "copy_dest_cluster",
        "num_copies_generated",
        "mem_extra_latency",
    )

    def __init__(self, static: MicroOp, seq: int) -> None:
        self.static = static
        self.seq = seq
        self.cluster: int = -1
        self.frontend_id: int = 0
        #: Renamed destination: (register_file, physical index) or None.
        self.dest_ref: Optional[Tuple[object, int]] = None
        #: Renamed sources, all local to ``cluster``.
        self.src_refs: List[Tuple[object, int]] = []
        #: Physical registers to release when this micro-op commits (the
        #: previous mappings of its destination logical register).
        self.prev_mappings: List[Tuple[object, int]] = []
        self.state = UopState.FETCHED
        self.fetch_cycle: int = -1
        self.rename_cycle: int = -1
        self.dispatch_cycle: int = -1
        self.issue_cycle: int = -1
        self.complete_cycle: int = -1
        self.commit_cycle: int = -1
        #: True for the special copy micro-ops that move register values
        #: between clusters over the point-to-point links.
        self.is_copy: bool = False
        #: For copies: the cluster that receives the value.
        self.copy_dest_cluster: int = -1
        #: Number of copy micro-ops that steering generated for this uop.
        self.num_copies_generated: int = 0
        #: Additional execution latency from cache misses / interconnect,
        #: determined at issue time for memory operations and copies.
        self.mem_extra_latency: int = 0

    # Convenience accessors on the static micro-op ----------------------
    @property
    def uop_class(self) -> UopClass:
        return self.static.uop_class

    @property
    def is_load(self) -> bool:
        return self.static.is_load

    @property
    def is_store(self) -> bool:
        return self.static.is_store

    @property
    def is_mem(self) -> bool:
        return self.static.is_mem

    @property
    def is_branch(self) -> bool:
        return self.static.is_branch

    @property
    def is_fp(self) -> bool:
        return self.static.is_fp

    @property
    def mispredicted(self) -> bool:
        return self.static.mispredicted

    @property
    def latency(self) -> int:
        return self.static.latency

    def sources_ready(self, cycle: int) -> bool:
        """Whether every renamed source operand is available at ``cycle``."""
        for regfile, index in self.src_refs:
            if not regfile.is_ready(index, cycle):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicUop(seq={self.seq}, {self.static.uop_class.value}, "
            f"cluster={self.cluster}, state={self.state.value})"
        )

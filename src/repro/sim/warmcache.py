"""Worker-resident warm cache: prepare once, replay many.

A physics replay spends a surprising share of its wall clock *before* the
first interval is solved: building the RC network, LU-factorizing the
:class:`~repro.thermal.solver.ThermalSolver`, and decoding the captured
:class:`~repro.sim.activity_trace.ActivityTrace` from its compressed binary
form.  All three are pure functions of immutable inputs, so a long-lived
worker (a persistent :class:`~repro.service.pool.WorkerPool` child, a
:class:`~repro.campaign.executors.ParallelExecutor` pool process, or the
serial path itself) can pay them once and reuse the products across every
task it runs.  This module is that reuse point:

* **Solver bundles** — ``(ThermalRCNetwork, ThermalSolver)`` pairs in a
  bounded LRU keyed by the floorplan geometry + thermal config + solver
  backend/ordering (a strict refinement of
  :func:`~repro.sim.group_replay.thermal_group_key`, which keys on block
  areas only).  The solver's own ``_propagator_cache`` / ``_affine_cache``
  ride along, so a warm hit also skips the per-``dt`` propagator work.
* **Decoded traces** — ``ActivityTrace`` objects in a bounded LRU keyed by
  the trace cache key (the :meth:`~repro.campaign.spec.RunSpec.timing_key`),
  so sibling replay tasks over the same trace decode it once per worker.
* **Zero-copy transport** — :class:`TraceRef`, a tiny picklable handle that
  ships *where the bytes live* (a ``*.trace.bin`` cache artifact to mmap, or
  a ``multiprocessing.shared_memory`` segment) instead of the bytes
  themselves, feeding the registry above on first resolve.

Reuse never changes results: a cached solver holds factorizations and
propagators, not run state, and an identical factorization produces an
identical solve — the replay outputs stay byte-identical to a cold run
(locked by the service equivalence tests).  The whole cache can be disabled
with ``REPRO_WARM_CACHE=0``; like the timing/replay mode knobs it is an
*execution* knob and deliberately not part of any cache key.

Layering: this lives in :mod:`repro.sim` (below the campaign and service
layers) so :class:`~repro.sim.engine.PhysicsStage` and
:mod:`~repro.sim.group_replay` can consult it without upward imports;
:mod:`repro.service.warmcache` re-exports it for the service runtime.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import mmap
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.sim.activity_trace import ActivityTrace
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.solver import ThermalSolver

#: Execution knob: set to ``0``/``false``/``off`` to disable all warm reuse
#: (every stage build factorizes fresh, every TraceRef decode is cold).
#: Deliberately NOT part of any cache key — it cannot change results.
WARM_CACHE_ENV = "REPRO_WARM_CACHE"

#: Bounds for the two LRUs (overridable via environment for experiments).
WARM_SOLVER_ENTRIES_ENV = "REPRO_WARM_SOLVERS"
WARM_TRACE_ENTRIES_ENV = "REPRO_WARM_TRACES"
DEFAULT_SOLVER_ENTRIES = 8
DEFAULT_TRACE_ENTRIES = 4

_FALSE_VALUES = ("0", "false", "off", "no")


def warm_cache_enabled() -> bool:
    """Whether warm reuse is on (default) — reads ``REPRO_WARM_CACHE``."""
    return os.environ.get(WARM_CACHE_ENV, "1").strip().lower() not in _FALSE_VALUES


def _env_bound(name: str, default: int) -> int:
    try:
        value = int(os.environ.get(name, ""))
    except ValueError:
        return default
    return max(1, value)


def solver_key(floorplan, thermal_config, backend: str, ordering: str) -> str:
    """Content key of one solver bundle.

    Everything :class:`~repro.thermal.rc_model.ThermalRCNetwork` and
    :class:`~repro.thermal.solver.ThermalSolver` read participates: the full
    block geometry (names, positions, dimensions, in node order), every
    thermal-config field, and the requested backend/ordering.  Two cells
    that differ only on the power side therefore share one bundle — the
    same sharing unit as
    :func:`~repro.sim.group_replay.thermal_group_key`, refined from block
    areas to exact geometry.
    """
    material = {
        "thermal": dataclasses.asdict(thermal_config),
        "blocks": [
            (block.name, block.x, block.y, block.width, block.height)
            for block in floorplan.blocks()
        ],
        "backend": backend,
        "ordering": ordering,
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class WarmCache:
    """Two bounded LRUs (solver bundles, decoded traces) with hit counters.

    Thread-safe: the service's thread-mode pool replays concurrently from
    several threads, so every structure mutation happens under one lock.
    The cached objects themselves are safe to share — solvers hold
    factorizations (read-only at solve time) and traces are frozen.
    """

    def __init__(
        self,
        max_solvers: Optional[int] = None,
        max_traces: Optional[int] = None,
    ) -> None:
        self.max_solvers = max_solvers or _env_bound(
            WARM_SOLVER_ENTRIES_ENV, DEFAULT_SOLVER_ENTRIES
        )
        self.max_traces = max_traces or _env_bound(
            WARM_TRACE_ENTRIES_ENV, DEFAULT_TRACE_ENTRIES
        )
        self._lock = threading.Lock()
        self._solvers: "OrderedDict[str, Tuple[ThermalRCNetwork, ThermalSolver]]" = (
            OrderedDict()
        )
        self._traces: "OrderedDict[str, ActivityTrace]" = OrderedDict()
        self.solver_hits = 0
        self.solver_misses = 0
        self.trace_hits = 0
        self.trace_misses = 0

    # -- solver bundles ------------------------------------------------
    def get_solver(self, key: str):
        with self._lock:
            bundle = self._solvers.get(key)
            if bundle is not None:
                self._solvers.move_to_end(key)
                self.solver_hits += 1
            return bundle

    def put_solver(self, key: str, bundle) -> None:
        with self._lock:
            self.solver_misses += 1
            self._solvers[key] = bundle
            self._solvers.move_to_end(key)
            while len(self._solvers) > self.max_solvers:
                self._solvers.popitem(last=False)

    # -- decoded traces ------------------------------------------------
    def get_trace(self, key: str) -> Optional[ActivityTrace]:
        with self._lock:
            trace = self._traces.get(key)
            if trace is not None:
                self._traces.move_to_end(key)
                self.trace_hits += 1
            return trace

    def put_trace(self, key: str, trace: ActivityTrace) -> None:
        with self._lock:
            self.trace_misses += 1
            self._traces[key] = trace
            self._traces.move_to_end(key)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)

    # -- observability -------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Cumulative counters only — summable across workers by the pool."""
        with self._lock:
            return {
                "solver_hits": self.solver_hits,
                "solver_misses": self.solver_misses,
                "trace_hits": self.trace_hits,
                "trace_misses": self.trace_misses,
            }

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "solvers_cached": len(self._solvers),
                "traces_cached": len(self._traces),
                "max_solvers": self.max_solvers,
                "max_traces": self.max_traces,
            }

    def clear(self) -> None:
        with self._lock:
            self._solvers.clear()
            self._traces.clear()
            self.solver_hits = 0
            self.solver_misses = 0
            self.trace_hits = 0
            self.trace_misses = 0


_CACHE = WarmCache()


def warm_cache() -> WarmCache:
    """The process-global warm cache (one per worker process)."""
    return _CACHE


def warm_snapshot() -> Dict[str, int]:
    """Counter snapshot of the process-global cache (for pool piggyback)."""
    return _CACHE.snapshot()


def solver_bundle(
    floorplan,
    thermal_config,
    *,
    backend: str = "auto",
    ordering: str = "colamd",
) -> Tuple[ThermalRCNetwork, ThermalSolver]:
    """A ``(network, solver)`` pair for this die, warm when possible.

    The single construction point the physics stage and the batched group
    replay share: on a warm hit the LU factorization (and any propagators
    the solver already derived) are reused; on a miss — or with
    ``REPRO_WARM_CACHE=0`` — the pair is built fresh, exactly as the
    direct constructors would.
    """
    if not warm_cache_enabled():
        network = ThermalRCNetwork(floorplan, thermal_config)
        return network, ThermalSolver(network, backend=backend, ordering=ordering)
    cache = warm_cache()
    key = solver_key(floorplan, thermal_config, backend, ordering)
    bundle = cache.get_solver(key)
    if bundle is None:
        network = ThermalRCNetwork(floorplan, thermal_config)
        solver = ThermalSolver(network, backend=backend, ordering=ordering)
        bundle = (network, solver)
        cache.put_solver(key, bundle)
    return bundle


# ----------------------------------------------------------------------
# Zero-copy trace transport
# ----------------------------------------------------------------------

#: Attribute stamped (via ``object.__setattr__`` — the dataclass is frozen)
#: on traces the campaign cache loads or stores, recording the on-disk
#: ``*.trace.bin`` artifact they correspond to.  Never serialized.
TRACE_SOURCE_ATTR = "_warm_source_path"


def stamp_trace_source(trace: ActivityTrace, path) -> None:
    """Record the cache artifact ``trace`` was loaded from / stored to."""
    object.__setattr__(trace, TRACE_SOURCE_ATTR, str(path))


def _attach_shm(name: str):
    """Attach to an existing shared-memory segment without adopting it.

    Python < 3.13 registers attached segments with the resource tracker
    exactly like created ones (bpo-39959).  On 3.13+ ``track=False`` opts
    out cleanly.  On older versions the forked workers share the parent's
    tracker process, where the attach-side registration is an idempotent
    no-op against the creator's own entry — unregistering here would strip
    that entry and make the creator's eventual ``unlink()`` complain, so
    the duplicate registration is deliberately left alone (the parent
    starts the tracker before any worker forks; see
    :class:`~repro.service.pool.WorkerPool`).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def ensure_shm_tracker() -> None:
    """Start the resource tracker in this process (call before forking).

    Guarantees that worker processes forked later share the parent's
    tracker, which is what makes attach-side registrations harmless on
    Python < 3.13 (see :func:`_attach_shm`).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - platform-dependent
        pass


class ShmHandle:
    """Creator-side handle of one shared-memory trace segment.

    The publisher keeps it until every consumer task has finished, then
    calls :meth:`close` — which closes the mapping *and unlinks the
    segment* so nothing leaks in ``/dev/shm``.  Idempotent.
    """

    def __init__(self, segment) -> None:
        self._segment = segment
        self.name = segment.name

    def close(self) -> None:
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except Exception:  # pragma: no cover - defensive cleanup
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - defensive cleanup
            pass


@dataclass(frozen=True)
class TraceRef:
    """A picklable pointer to trace bytes living outside the task payload.

    ``kind="path"`` names a ``*.trace.bin`` cache artifact (the worker
    mmaps it and decodes over a memoryview — no intermediate ``bytes``
    copy of the file); ``kind="shm"`` names a
    ``multiprocessing.shared_memory`` segment of ``nbytes`` of
    :meth:`~repro.sim.activity_trace.ActivityTrace.to_bytes` content.
    ``key`` is the trace cache key (timing key) under which the decoded
    trace lands in the worker's warm registry, so sibling tasks skip the
    decode entirely.
    """

    key: str
    kind: str
    locator: str
    nbytes: int

    def resolve(self) -> ActivityTrace:
        cache = warm_cache()
        if warm_cache_enabled():
            trace = cache.get_trace(self.key)
            if trace is not None:
                return trace
        if self.kind == "path":
            with open(self.locator, "rb") as handle:
                with mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                ) as mapped:
                    buffer = memoryview(mapped)
                    try:
                        trace = ActivityTrace.from_bytes(buffer)
                    finally:
                        buffer.release()
        elif self.kind == "shm":
            segment = _attach_shm(self.locator)
            try:
                buffer = segment.buf[: self.nbytes]
                try:
                    trace = ActivityTrace.from_bytes(buffer)
                finally:
                    buffer.release()
            finally:
                segment.close()
        else:
            raise ValueError(f"unknown trace ref kind {self.kind!r}")
        if warm_cache_enabled():
            cache.put_trace(self.key, trace)
        return trace


def publish_trace(trace: ActivityTrace, key: str):
    """Prepare one trace for zero-copy shipment to worker processes.

    Returns ``(payload, handle)``: ``payload`` is a :class:`TraceRef` when
    zero-copy transport is possible — the trace's cache artifact path when
    the campaign cache stamped one (and the file still exists), else a
    freshly created shared-memory segment — and falls back to the trace
    itself (pickled compressed, the pre-warm behavior) when neither works,
    e.g. with no cache configured and no ``/dev/shm``.  ``handle`` is the
    :class:`ShmHandle` the caller must ``close()`` once consumers are done
    (``None`` for the path and fallback cases).
    """
    source = getattr(trace, TRACE_SOURCE_ATTR, None)
    if source:
        path = Path(source)
        try:
            nbytes = path.stat().st_size
        except OSError:
            nbytes = 0
        if nbytes > 0:
            return TraceRef(key=key, kind="path", locator=str(path), nbytes=nbytes), None
    try:
        from multiprocessing import shared_memory

        data = trace.to_bytes()
        segment = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
        segment.buf[: len(data)] = data
        ref = TraceRef(key=key, kind="shm", locator=segment.name, nbytes=len(data))
        return ref, ShmHandle(segment)
    except Exception:
        return trace, None


def resolve_trace(payload) -> ActivityTrace:
    """Accept either a real trace (thread mode / fallback) or a TraceRef."""
    if isinstance(payload, TraceRef):
        return payload.resolve()
    return payload

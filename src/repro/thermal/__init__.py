"""HotSpot-style dynamic compact thermal model (Section 2.1 of the paper).

The temperature model is based on the duality between thermal and electrical
phenomena: every floorplan block is a node of an RC network with a thermal
capacitance (silicon volume), a vertical resistance towards the copper heat
spreader (through the die and the thermal interface material), and lateral
resistances towards adjacent blocks.  The spreader and the heat sink are
additional nodes; the sink convects to ambient air.

Steady-state solves are used to warm the processor up before measurement
(the paper starts simulations with the processor already warm); transient
solves advance the temperatures interval by interval using the per-interval
power computed by :mod:`repro.power`.
"""

from repro.thermal.floorplan import Block, Floorplan, build_floorplan
from repro.thermal.package import PackageProperties, MaterialProperties, SILICON, COPPER, TIM
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.solver import (
    SOLVER_BACKENDS,
    SPARSE_NODE_THRESHOLD,
    ThermalSolver,
    resolve_backend,
    sparse_backend_available,
)
from repro.thermal.sensors import ThermalSensor, SensorBank
from repro.thermal.metrics import temperature_metrics_from_history

__all__ = [
    "Block",
    "Floorplan",
    "build_floorplan",
    "PackageProperties",
    "MaterialProperties",
    "SILICON",
    "COPPER",
    "TIM",
    "ThermalRCNetwork",
    "ThermalSolver",
    "ThermalSensor",
    "SensorBank",
    "SOLVER_BACKENDS",
    "SPARSE_NODE_THRESHOLD",
    "resolve_backend",
    "sparse_backend_available",
    "temperature_metrics_from_history",
]

"""Processor floorplans (Figures 10 and 11 of the paper).

The floorplan determines how heat spreads laterally between blocks, which is
what makes the paper's techniques work: distributing a hot structure spreads
its activity over a larger area, and a cooler neighbour absorbs part of a hot
block's heat.  The layout mirrors the paper's figures:

* a frontend strip at the top of the die: a row with the reorder buffer, a
  row with the rename table / ITLB / trace-cache bank 0 and a row with the
  decoder / branch predictor / trace-cache bank 1 (the three-bank floorplan
  used for bank hopping re-arranges these rows as in Figure 11);
* the four backend clusters side by side in the middle, each with the
  internal arrangement of Figure 10b (data cache and DTLB, functional units
  and memory order buffer, register files, schedulers);
* the UL2 across the bottom of the die.

Block sizes come from the power/area model; the layout solver simply slices
each region into rows whose heights are proportional to the row's total area
and then slices each row into blocks whose widths are proportional to the
block areas, which keeps every region exactly filled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.sim import blocks
from repro.sim.config import ProcessorConfig

#: Two blocks closer than this (in metres) are considered touching.
_ADJACENCY_TOLERANCE_M = 1e-9


@dataclass(frozen=True)
class Block:
    """An axis-aligned rectangular floorplan block (dimensions in metres)."""

    name: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"block {self.name} must have positive dimensions")

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def area_mm2(self) -> float:
        return self.area * 1e6

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def renamed(self, name: str) -> "Block":
        """The same rectangle under a different name."""
        return Block(name=name, x=self.x, y=self.y, width=self.width, height=self.height)

    def translated(self, dx: float, dy: float) -> "Block":
        """The same rectangle shifted by ``(dx, dy)`` metres."""
        return Block(
            name=self.name, x=self.x + dx, y=self.y + dy, width=self.width, height=self.height
        )

    def shared_edge_length(self, other: "Block") -> float:
        """Length of the boundary shared with ``other`` (0 if not adjacent)."""
        tol = _ADJACENCY_TOLERANCE_M
        # Vertical adjacency (one block on top of the other).
        if (
            abs((self.y + self.height) - other.y) < tol
            or abs((other.y + other.height) - self.y) < tol
        ):
            overlap = min(self.x + self.width, other.x + other.width) - max(self.x, other.x)
            if overlap > tol:
                return overlap
        # Horizontal adjacency (side by side).
        if (
            abs((self.x + self.width) - other.x) < tol
            or abs((other.x + other.width) - self.x) < tol
        ):
            overlap = min(self.y + self.height, other.y + other.height) - max(self.y, other.y)
            if overlap > tol:
                return overlap
        return 0.0


class Floorplan:
    """A collection of non-overlapping blocks covering the die."""

    def __init__(self, blocks_: Sequence[Block]) -> None:
        if not blocks_:
            raise ValueError("a floorplan needs at least one block")
        names = [b.name for b in blocks_]
        if len(set(names)) != len(names):
            raise ValueError("duplicate block names in floorplan")
        self._blocks: Dict[str, Block] = {b.name: b for b in blocks_}

    # ------------------------------------------------------------------
    @property
    def block_names(self) -> List[str]:
        return list(self._blocks)

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def block(self, name: str) -> Block:
        return self._blocks[name]

    def blocks(self) -> List[Block]:
        return list(self._blocks.values())

    @property
    def die_width(self) -> float:
        return max(b.x + b.width for b in self._blocks.values())

    @property
    def die_height(self) -> float:
        return max(b.y + b.height for b in self._blocks.values())

    @property
    def die_area(self) -> float:
        return sum(b.area for b in self._blocks.values())

    @property
    def die_area_mm2(self) -> float:
        return self.die_area * 1e6

    def adjacency(self) -> List[Tuple[str, str, float]]:
        """All pairs of adjacent blocks with their shared edge length (m)."""
        result: List[Tuple[str, str, float]] = []
        names = list(self._blocks)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                shared = self._blocks[a].shared_edge_length(self._blocks[b])
                if shared > 0.0:
                    result.append((a, b, shared))
        return result

    def neighbours(self, name: str) -> List[str]:
        """Blocks sharing an edge with ``name``."""
        target = self._blocks[name]
        return [
            other.name
            for other in self._blocks.values()
            if other.name != name and target.shared_edge_length(other) > 0.0
        ]

    def namespaced(self, prefix: str, separator: str = ".") -> "Floorplan":
        """This floorplan with every block renamed ``<prefix><separator><name>``.

        Geometry is untouched, and block order is preserved, so the renamed
        plan builds exactly the same conductance and capacitance matrices as
        the original — renaming is free in the physics.
        """
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        return Floorplan(
            [b.renamed(f"{prefix}{separator}{b.name}") for b in self._blocks.values()]
        )

    def translated(self, dx: float, dy: float) -> "Floorplan":
        """This floorplan shifted by ``(dx, dy)`` metres (order preserved)."""
        return Floorplan([b.translated(dx, dy) for b in self._blocks.values()])

    def describe(self) -> str:
        """Tabular, human-readable description of the floorplan."""
        lines = [
            f"Die: {self.die_width * 1e3:.2f} x {self.die_height * 1e3:.2f} mm "
            f"({self.die_area_mm2:.1f} mm^2), {len(self)} blocks",
            f"{'block':<12} {'x (mm)':>8} {'y (mm)':>8} {'w (mm)':>8} {'h (mm)':>8} {'area':>9}",
        ]
        for block in sorted(self._blocks.values(), key=lambda b: (b.y, b.x)):
            lines.append(
                f"{block.name:<12} {block.x * 1e3:>8.3f} {block.y * 1e3:>8.3f} "
                f"{block.width * 1e3:>8.3f} {block.height * 1e3:>8.3f} "
                f"{block.area_mm2:>7.2f}mm2"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Multi-die composition (the chip-multiprocessor layer)
# ----------------------------------------------------------------------
def compose_floorplans(
    plans: Sequence[Floorplan],
    prefixes: Sequence[str],
    columns: int = 0,
    separator: str = ".",
) -> Floorplan:
    """Compose several floorplans into one die on a core grid.

    Each sub-floorplan is namespaced (``core0.ROB``, ``core1.ROB``, ...) and
    placed into a row-major grid of ``columns`` columns (default: the
    smallest square grid that fits, so 2 cores sit side by side and 4 cores
    form a 2x2 grid).  Grid cells are sized by the largest sub-die, and every
    sub-plan is anchored at its cell's origin, so identical dies abut exactly
    edge to edge — :meth:`Block.shared_edge_length` then reports the touching
    block pairs *across* core boundaries, and a
    :class:`~repro.thermal.rc_model.ThermalRCNetwork` built over the
    composite naturally produces cross-core lateral coupling in addition to
    the coupling through the shared spreader and sink.

    With a single floorplan the composition is a pure rename: the geometry —
    and therefore every conductance and capacitance — is bit-identical to the
    original, which is what keeps a 1-core chip equal to the single-core
    engine.
    """
    if not plans:
        raise ValueError("composition needs at least one floorplan")
    if len(prefixes) != len(plans):
        raise ValueError(
            f"{len(plans)} floorplans but {len(prefixes)} namespace prefixes"
        )
    if len(set(prefixes)) != len(prefixes):
        raise ValueError(f"namespace prefixes must be unique, got {list(prefixes)}")
    if columns <= 0:
        columns = int(len(plans) ** 0.5)
        while columns * columns < len(plans):
            columns += 1
    cell_width = max(plan.die_width for plan in plans)
    cell_height = max(plan.die_height for plan in plans)
    placed: List[Block] = []
    for i, (plan, prefix) in enumerate(zip(plans, prefixes)):
        row, col = divmod(i, columns)
        namespaced = plan.namespaced(prefix, separator=separator)
        if row or col:
            namespaced = namespaced.translated(col * cell_width, row * cell_height)
        placed.extend(namespaced.blocks())
    return Floorplan(placed)


# ----------------------------------------------------------------------
# Layout construction
# ----------------------------------------------------------------------
def _layout_rows(
    rows: Sequence[Sequence[str]],
    areas_m2: Mapping[str, float],
    origin_x: float,
    origin_y: float,
    region_width: float,
) -> List[Block]:
    """Slice a region into rows of blocks (row height follows row area)."""
    placed: List[Block] = []
    y = origin_y
    for row in rows:
        row_area = sum(areas_m2[name] for name in row)
        if row_area <= 0:
            continue
        height = row_area / region_width
        x = origin_x
        for name in row:
            width = areas_m2[name] / height
            placed.append(Block(name=name, x=x, y=y, width=width, height=height))
            x += width
        y += height
    return placed


def _frontend_rows(config: ProcessorConfig) -> List[List[str]]:
    """Frontend block rows following Figure 10a (2 banks) or Figure 11 (3 banks)."""
    num_frontends = config.frontend.num_frontends
    rob_row = [blocks.rob_block(i, num_frontends) for i in range(num_frontends)]
    rat_row = [blocks.rat_block(i, num_frontends) for i in range(num_frontends)]
    physical_banks = config.frontend.trace_cache.physical_banks
    bank = blocks.trace_cache_bank_block
    if physical_banks <= 2:
        return [
            rob_row,
            rat_row + [blocks.ITLB, bank(0)],
            [blocks.DECODER, blocks.BRANCH_PREDICTOR] + [bank(b) for b in range(1, physical_banks)],
        ]
    # Figure 11: ROB / DECO TC-0 ITLB / RAT TC-1 BP TC-2 (extra banks appended).
    return [
        rob_row,
        [blocks.DECODER, bank(0), blocks.ITLB],
        rat_row + [bank(1), blocks.BRANCH_PREDICTOR] + [bank(b) for b in range(2, physical_banks)],
    ]


def _cluster_rows(cluster: int) -> List[List[str]]:
    """Cluster-internal block rows following Figure 10b."""
    c = lambda suffix: blocks.cluster_block(cluster, suffix)  # noqa: E731
    return [
        [c(blocks.CLUSTER_DCACHE), c(blocks.CLUSTER_DTLB)],
        [c(blocks.CLUSTER_FP_FU), c(blocks.CLUSTER_INT_FU), c(blocks.CLUSTER_MOB)],
        [c(blocks.CLUSTER_FP_RF), c(blocks.CLUSTER_INT_RF)],
        [c(blocks.CLUSTER_FP_SCHED), c(blocks.CLUSTER_COPY_SCHED), c(blocks.CLUSTER_INT_SCHED)],
    ]


def build_floorplan(
    config: ProcessorConfig, block_areas_mm2: Mapping[str, float]
) -> Floorplan:
    """Build the processor floorplan for a configuration.

    Parameters
    ----------
    config:
        Processor configuration (determines which blocks exist and how the
        frontend strip is arranged).
    block_areas_mm2:
        Area of every block in mm^2 (typically from
        :func:`repro.power.energy.build_block_parameters`).
    """
    expected = blocks.all_blocks(config)
    missing = set(expected) - set(block_areas_mm2)
    if missing:
        raise ValueError(f"missing areas for blocks: {sorted(missing)}")

    # Iterate in canonical block order, NOT over a set: the total-area sum
    # below feeds the die width, and a hash-seed-dependent summation order
    # would perturb every floorplan coordinate (and hence every conductance
    # and temperature) in the last ulp from one process to the next.
    areas_m2 = {name: block_areas_mm2[name] * 1e-6 for name in expected}
    total_area = sum(areas_m2.values())
    die_width = total_area ** 0.5  # roughly square die

    placed: List[Block] = []

    # Frontend strip at the top of the die.
    frontend_rows = _frontend_rows(config)
    frontend_names = [name for row in frontend_rows for name in row]
    placed.extend(
        _layout_rows(frontend_rows, areas_m2, origin_x=0.0, origin_y=0.0, region_width=die_width)
    )
    frontend_height = sum(areas_m2[name] for name in frontend_names) / die_width

    # Backend clusters side by side below the frontend.
    num_clusters = config.backend.num_clusters
    cluster_area = sum(
        areas_m2[name]
        for c in range(num_clusters)
        for name in blocks.cluster_blocks(config, c)
    )
    cluster_strip_height = cluster_area / die_width
    cluster_width = die_width / num_clusters
    for c in range(num_clusters):
        placed.extend(
            _layout_rows(
                _cluster_rows(c),
                areas_m2,
                origin_x=c * cluster_width,
                origin_y=frontend_height,
                region_width=cluster_width,
            )
        )

    # UL2 across the bottom of the die.
    ul2_height = areas_m2[blocks.UL2] / die_width
    placed.append(
        Block(
            name=blocks.UL2,
            x=0.0,
            y=frontend_height + cluster_strip_height,
            width=die_width,
            height=ul2_height,
        )
    )
    return Floorplan(placed)

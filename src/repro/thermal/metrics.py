"""Temperature metric helpers (Section 4 of the paper).

The paper reports three metrics, always as an increase over the 45 C ambient:

* ``AbsMax``  — peak temperature over time and space,
* ``Average`` — average temperature over time and space,
* ``AvgMax``  — average over intervals of the per-interval maximum.

:class:`repro.sim.results.SimulationResult` computes these for simulation
runs; the standalone helpers here operate on raw temperature histories and
are used by the thermal unit tests and by the ablation tooling.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def temperature_metrics_from_history(
    history: Sequence[Mapping[str, float]],
    block_names: Sequence[str],
    ambient_celsius: float = 45.0,
) -> Dict[str, float]:
    """Compute AbsMax / Average / AvgMax over a per-interval temperature history.

    Parameters
    ----------
    history:
        One mapping of block name to temperature (Celsius) per interval.
    block_names:
        Blocks to aggregate over (e.g. the trace-cache banks).
    ambient_celsius:
        Ambient temperature subtracted from every metric.
    """
    if not history:
        raise ValueError("temperature history is empty")
    if not block_names:
        raise ValueError("at least one block is required")
    abs_max = float("-inf")
    interval_maxima = []
    interval_means = []
    for snapshot in history:
        temps = [snapshot[name] for name in block_names]
        interval_max = max(temps)
        interval_maxima.append(interval_max)
        interval_means.append(sum(temps) / len(temps))
        abs_max = max(abs_max, interval_max)
    return {
        "AbsMax": abs_max - ambient_celsius,
        "Average": sum(interval_means) / len(interval_means) - ambient_celsius,
        "AvgMax": sum(interval_maxima) / len(interval_maxima) - ambient_celsius,
    }


def reduction_over_baseline(
    baseline: Mapping[str, float], improved: Mapping[str, float]
) -> Dict[str, float]:
    """Fractional reduction of each metric relative to a baseline.

    Both mappings must contain temperature *increases over ambient* (as
    returned by :func:`temperature_metrics_from_history`).
    """
    reductions = {}
    for metric, base_value in baseline.items():
        if metric not in improved:
            raise KeyError(f"metric {metric!r} missing from improved results")
        if base_value <= 0:
            reductions[metric] = 0.0
        else:
            reductions[metric] = (base_value - improved[metric]) / base_value
    return reductions

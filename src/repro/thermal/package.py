"""Material and package properties of the thermal model.

The thermal solution attached to the processor die consists of a copper heat
spreader in contact with the die (3.1 x 3.1 x 0.23 cm, similar to the one
used in Pentium 4 Northwood processors) and a copper heat sink on top of it
(7 x 8.3 x 4.11 cm), as described in Section 4 of the paper.  The sink
transfers heat to the ambient air through a convection resistance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import ThermalConfig


@dataclass(frozen=True)
class MaterialProperties:
    """Bulk thermal properties of a packaging material."""

    name: str
    #: Thermal conductivity, W / (m K).
    conductivity: float
    #: Volumetric heat capacity, J / (m^3 K).
    volumetric_heat_capacity: float

    def __post_init__(self) -> None:
        if self.conductivity <= 0 or self.volumetric_heat_capacity <= 0:
            raise ValueError("material properties must be positive")


#: Silicon near 85-100 C.
SILICON = MaterialProperties("silicon", conductivity=110.0, volumetric_heat_capacity=1.75e6)
#: Copper (heat spreader and heat sink base).
COPPER = MaterialProperties("copper", conductivity=400.0, volumetric_heat_capacity=3.55e6)
#: Thermal interface material between die and spreader.
TIM = MaterialProperties("tim", conductivity=4.0, volumetric_heat_capacity=4.0e6)

#: Factor by which heat spreading at 45 degrees through the die effectively
#: enlarges the vertical conduction area of a small block.
VERTICAL_SPREADING_FACTOR = 2.2


@dataclass(frozen=True)
class PackageProperties:
    """Geometry-derived thermal resistances and capacitances of the package."""

    #: Resistance from the spreader node to the sink node (K/W).
    spreader_to_sink_resistance: float
    #: Resistance from the sink node to ambient air (K/W).
    sink_to_ambient_resistance: float
    #: Heat capacity of the spreader node (J/K).
    spreader_capacitance: float
    #: Heat capacity of the sink node (J/K).
    sink_capacitance: float

    @classmethod
    def from_config(cls, config: ThermalConfig, die_area_m2: float) -> "PackageProperties":
        """Build the package from the paper's geometry and a die area."""
        if die_area_m2 <= 0:
            raise ValueError("die area must be positive")
        spreader_area = config.spreader_side_m ** 2
        sink_base_area = config.sink_width_m * config.sink_depth_m
        # Conduction through the spreader thickness over (roughly) the die
        # footprint, plus a constriction term for spreading from the die
        # footprint to the full spreader area.
        conduction = config.spreader_thickness_m / (COPPER.conductivity * die_area_m2 * 3.0)
        constriction = 0.08
        spreader_to_sink = conduction + constriction
        sink_to_ambient = config.convection_resistance_k_per_w
        spreader_capacitance = (
            COPPER.volumetric_heat_capacity * spreader_area * config.spreader_thickness_m
        )
        sink_capacitance = (
            COPPER.volumetric_heat_capacity * sink_base_area * config.sink_thickness_m
        )
        return cls(
            spreader_to_sink_resistance=spreader_to_sink,
            sink_to_ambient_resistance=sink_to_ambient,
            spreader_capacitance=spreader_capacitance,
            sink_capacitance=sink_capacitance,
        )

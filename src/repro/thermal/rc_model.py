"""Thermal RC network construction (the dynamic compact model).

Every floorplan block is a node.  The network contains:

* a vertical conduction path from each block through the remaining die
  silicon and the thermal interface material to the heat-spreader node;
* lateral conduction paths between blocks that share a floorplan edge;
* the spreader node, connected to the heat-sink node;
* the sink node, connected to the ambient through the convection resistance.

The node temperatures follow ``C dT/dt = P - G (T - T_ambient_vector)`` where
``G`` is the conductance (Laplacian) matrix, ``C`` the diagonal capacitance
matrix and ``P`` the per-node power injection (zero for package nodes).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

import numpy as np

from repro.sim.config import ThermalConfig
from repro.thermal.floorplan import Floorplan
from repro.thermal.package import (
    COPPER,
    PackageProperties,
    SILICON,
    TIM,
    VERTICAL_SPREADING_FACTOR,
)


class ThermalRCNetwork:
    """The compact RC model of the die plus its package."""

    def __init__(self, floorplan: Floorplan, config: ThermalConfig) -> None:
        self.floorplan = floorplan
        self.config = config
        self.block_names: List[str] = list(floorplan.block_names)
        self.num_blocks = len(self.block_names)
        #: Node ordering: blocks, then spreader, then sink.
        self.spreader_index = self.num_blocks
        self.sink_index = self.num_blocks + 1
        self.num_nodes = self.num_blocks + 2
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.block_names)
        }
        self.package = PackageProperties.from_config(config, floorplan.die_area)
        self.conductance = self._build_conductance()
        self.capacitance = self._build_capacitance()

    # ------------------------------------------------------------------
    def node_index(self, block_name: str) -> int:
        return self._index[block_name]

    def node_positions(self, block_names) -> np.ndarray:
        """Node indices of several blocks, as an integer array.

        The fast path keeps per-block vectors in the power model's block
        order, which need not match the floorplan's; this is the explicit
        permutation that scatters such a vector into node space (and gathers
        node temperatures back out).
        """
        return np.array([self._index[name] for name in block_names], dtype=np.intp)

    # ------------------------------------------------------------------
    # Matrix construction
    # ------------------------------------------------------------------
    def _vertical_conductance(self, area_m2: float) -> float:
        """Block-to-spreader conductance through die silicon and TIM."""
        effective_area = area_m2 * VERTICAL_SPREADING_FACTOR
        r_die = self.config.die_thickness_m / (SILICON.conductivity * effective_area)
        r_tim = self.config.tim_thickness_m / (TIM.conductivity * effective_area)
        return 1.0 / (r_die + r_tim)

    def _lateral_conductance(self, name_a: str, name_b: str, shared_edge: float) -> float:
        """Block-to-block conductance through the die silicon."""
        block_a = self.floorplan.block(name_a)
        block_b = self.floorplan.block(name_b)
        # Heat flows between block centres through a cross-section of the
        # shared edge length times the die thickness.
        ax, ay = block_a.center
        bx, by = block_b.center
        distance = max(1e-6, ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5)
        cross_section = shared_edge * self.config.die_thickness_m
        return SILICON.conductivity * cross_section / distance

    def _conductance_entries(self) -> Iterator[Tuple[int, int, float]]:
        """Every ``G[i, j] += value`` update of the conductance build, in order.

        This triplet stream is the single source of truth for the matrix:
        the dense build replays it with sequential ``+=`` (so its arithmetic
        — and therefore every golden fixture downstream — is unchanged by
        the sparse backend's existence), and :meth:`conductance_sparse`
        compresses the resulting dense matrix, inheriting the exact same
        entry values.
        """

        def coupling(i: int, j: int, value: float) -> Iterator[Tuple[int, int, float]]:
            yield (i, i, value)
            yield (j, j, value)
            yield (i, j, -value)
            yield (j, i, -value)

        # Vertical paths block -> spreader.
        for name in self.block_names:
            block = self.floorplan.block(name)
            yield from coupling(
                self._index[name], self.spreader_index, self._vertical_conductance(block.area)
            )
        # Lateral paths between adjacent blocks.
        for name_a, name_b, shared in self.floorplan.adjacency():
            yield from coupling(
                self._index[name_a],
                self._index[name_b],
                self._lateral_conductance(name_a, name_b, shared),
            )
        # Spreader -> sink -> ambient.
        yield from coupling(
            self.spreader_index,
            self.sink_index,
            1.0 / self.package.spreader_to_sink_resistance,
        )
        # The ambient is a fixed-temperature source: only the diagonal term
        # remains (the off-diagonal part is folded into the source vector).
        yield (
            self.sink_index,
            self.sink_index,
            1.0 / self.package.sink_to_ambient_resistance,
        )

    def _build_conductance(self) -> np.ndarray:
        g = np.zeros((self.num_nodes, self.num_nodes))
        for i, j, value in self._conductance_entries():
            g[i, j] += value
        return g

    def conductance_sparse(self):
        """The conductance matrix as a ``scipy.sparse`` CSC matrix.

        Compressed from the dense :attr:`conductance` the constructor
        already built (the floorplan adjacency walk is not repeated), so
        the stored nonzeros are *bit-identical* to the dense entries —
        the two assemblies differ only in what the zeros cost.  CSC is
        what ``scipy.sparse.linalg.splu`` factorizes without a conversion
        copy.

        Raises :class:`RuntimeError` when SciPy is not installed — callers
        gate on :func:`repro.thermal.solver.sparse_backend_available` (the
        ``auto`` solver backend falls back to dense instead of calling
        this).
        """
        try:
            from scipy import sparse
        except ImportError as error:  # pragma: no cover - scipy present in CI
            raise RuntimeError(
                "the sparse conductance assembly requires scipy"
            ) from error
        return sparse.csc_matrix(self.conductance)

    def _build_capacitance(self) -> np.ndarray:
        c = np.zeros(self.num_nodes)
        for name in self.block_names:
            block = self.floorplan.block(name)
            c[self._index[name]] = (
                SILICON.volumetric_heat_capacity * block.area * self.config.die_thickness_m
            )
        c[self.spreader_index] = self.package.spreader_capacitance
        c[self.sink_index] = self.package.sink_capacitance
        return c

    # ------------------------------------------------------------------
    # Source vector helpers
    # ------------------------------------------------------------------
    def ambient_source(self) -> np.ndarray:
        """Constant heat inflow equivalent of the fixed ambient temperature.

        Working in temperatures relative to ambient would make this zero; the
        solver works in absolute Celsius, so the ambient contributes
        ``T_ambient / R_convection`` at the sink node.
        """
        source = np.zeros(self.num_nodes)
        source[self.sink_index] = (
            self.config.ambient_celsius / self.package.sink_to_ambient_resistance
        )
        return source

    def power_vector(self, block_power: Mapping[str, float]) -> np.ndarray:
        """Per-node power injection vector from a per-block power mapping."""
        p = np.zeros(self.num_nodes)
        for name, power in block_power.items():
            if name not in self._index:
                raise KeyError(f"power specified for unknown block {name!r}")
            p[self._index[name]] = power
        return p

    def temperatures_by_block(self, state: np.ndarray) -> Dict[str, float]:
        """Convert a node-temperature vector to a per-block dictionary."""
        return {name: float(state[self._index[name]]) for name in self.block_names}

    def uniform_state(self, temperature_celsius: float) -> np.ndarray:
        """A node vector with every node at the same temperature."""
        return np.full(self.num_nodes, float(temperature_celsius))

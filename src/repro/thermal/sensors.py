"""Thermal sensors.

The thermal-aware bank mapping function requires at least one thermal sensor
per trace-cache bank (Section 3.2.2).  Real sensors quantize and slightly lag
the actual junction temperature; the model supports a configurable
quantization step so experiments can check the technique's robustness to
sensor resolution.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np


class ThermalSensor:
    """A single on-die temperature sensor attached to one block."""

    def __init__(self, block: str, quantization_celsius: float = 0.5) -> None:
        if quantization_celsius < 0:
            raise ValueError("quantization must be non-negative")
        self.block = block
        self.quantization_celsius = quantization_celsius
        self.last_reading: float = float("nan")

    def read(self, temperatures: Mapping[str, float]) -> float:
        """Sample the block's temperature, applying sensor quantization."""
        actual = temperatures[self.block]
        if self.quantization_celsius == 0:
            reading = actual
        else:
            step = self.quantization_celsius
            reading = round(actual / step) * step
        self.last_reading = reading
        return reading


class SensorBank:
    """A set of sensors, one per monitored block."""

    def __init__(self, block_names: Iterable[str], quantization_celsius: float = 0.5) -> None:
        self.sensors: Dict[str, ThermalSensor] = {
            name: ThermalSensor(name, quantization_celsius) for name in block_names
        }
        if not self.sensors:
            raise ValueError("a sensor bank needs at least one sensor")
        #: Per-sensor quantization steps (degrees Celsius), in sensor order —
        #: precomputed for the vectorized :meth:`read_array` path.
        self._quantization_steps = np.array(
            [s.quantization_celsius for s in self.sensors.values()]
        )

    def read_all(self, temperatures: Mapping[str, float]) -> Dict[str, float]:
        """Sample every sensor and return block -> reading (degrees Celsius)."""
        return {name: sensor.read(temperatures) for name, sensor in self.sensors.items()}

    def read_array(self, temperatures: np.ndarray) -> np.ndarray:
        """Sample every sensor from a temperature vector (the DTM fast path).

        ``temperatures`` must be ordered like this bank's sensors (the DTM
        hook builds the bank from the engine's block index, so both share
        one order).  Quantization is vectorized — ``np.round`` rounds half
        to even exactly like the scalar :meth:`ThermalSensor.read` path —
        and each sensor's ``last_reading`` is still updated so
        introspection keeps working.  Returns the readings as a new vector,
        degrees Celsius.
        """
        sensors = list(self.sensors.values())
        if len(temperatures) != len(sensors):
            raise ValueError(
                f"temperature vector has {len(temperatures)} entries for "
                f"{len(sensors)} sensors"
            )
        steps = self._quantization_steps
        readings = np.where(
            steps > 0,
            np.round(temperatures / np.where(steps > 0, steps, 1.0)) * steps,
            temperatures,
        )
        for sensor, reading in zip(sensors, readings.tolist()):
            sensor.last_reading = reading
        return readings

    def hottest(self, temperatures: Mapping[str, float]) -> str:
        """Block with the highest sensor reading."""
        readings = self.read_all(temperatures)
        return max(readings, key=readings.get)

"""Steady-state and transient solvers for the thermal RC network.

* The **steady-state** solve (``G T = P + ambient source``) is used to warm
  the processor up before measurement, iterating with the leakage model until
  the temperatures converge or the emergency limit (381 K) is reached, as the
  paper does.
* The **transient** solve advances the node temperatures over one thermal
  interval using the exact matrix-exponential solution of the linear system
  ``C dT/dt = b - G T`` (power is held constant within the interval).  The
  propagator ``exp(-C^-1 G dt)`` is cached because every interval has the
  same duration.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.thermal.rc_model import ThermalRCNetwork

try:  # SciPy gives an exact matrix exponential; fall back to scaling+squaring.
    from scipy.linalg import expm as _expm
except ImportError:  # pragma: no cover - scipy is available in the target env
    _expm = None


def _matrix_exponential(matrix: np.ndarray) -> np.ndarray:
    """Matrix exponential with a NumPy fallback (scaling and squaring)."""
    if _expm is not None:
        return _expm(matrix)
    # Scaling and squaring with a Taylor series (adequate for the small,
    # well-conditioned matrices of the compact model).
    norm = np.linalg.norm(matrix, ord=np.inf)
    squarings = max(0, int(np.ceil(np.log2(max(norm, 1e-16)))) + 1)
    scaled = matrix / (2 ** squarings)
    result = np.eye(matrix.shape[0])
    term = np.eye(matrix.shape[0])
    for k in range(1, 16):
        term = term @ scaled / k
        result = result + term
    for _ in range(squarings):
        result = result @ result
    return result


class ThermalSolver:
    """Solves the RC network built by :class:`ThermalRCNetwork`."""

    def __init__(self, network: ThermalRCNetwork) -> None:
        self.network = network
        self._propagator_cache: Dict[float, np.ndarray] = {}
        # G is symmetric positive definite thanks to the ambient conductance
        # on the sink node, so plain solves are safe.
        self._g = network.conductance
        self._c = network.capacitance

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------
    def steady_state(self, block_power: Mapping[str, float]) -> Dict[str, float]:
        """Steady-state block temperatures for a constant power map."""
        rhs = self.network.power_vector(block_power) + self.network.ambient_source()
        state = np.linalg.solve(self._g, rhs)
        return self.network.temperatures_by_block(state)

    def steady_state_vector(self, block_power: Mapping[str, float]) -> np.ndarray:
        rhs = self.network.power_vector(block_power) + self.network.ambient_source()
        return np.linalg.solve(self._g, rhs)

    def warmup(
        self,
        power_at_temperature: Callable[[Dict[str, float]], Mapping[str, float]],
        max_iterations: int = 50,
        tolerance_celsius: float = 0.05,
        emergency_limit_celsius: Optional[float] = None,
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Iterate steady-state solves with temperature-dependent power.

        ``power_at_temperature`` maps the current block temperatures to the
        per-block power (dynamic + leakage at those temperatures).  Iteration
        stops when the largest block-temperature change falls below the
        tolerance, or when any block reaches the emergency limit — the paper
        warms the processor "until temperature converges or reaches the
        emergency limit (381 K)".

        Returns the final node-state vector and the block temperatures.
        """
        temperatures = self.network.temperatures_by_block(
            self.network.uniform_state(self.network.config.ambient_celsius)
        )
        state = self.network.uniform_state(self.network.config.ambient_celsius)
        limit = (
            emergency_limit_celsius
            if emergency_limit_celsius is not None
            else self.network.config.emergency_limit_celsius
        )
        for _ in range(max_iterations):
            power = power_at_temperature(temperatures)
            state = self.steady_state_vector(power)
            new_temperatures = self.network.temperatures_by_block(state)
            delta = max(
                abs(new_temperatures[name] - temperatures[name])
                for name in new_temperatures
            )
            temperatures = new_temperatures
            if max(temperatures.values()) >= limit:
                break
            if delta < tolerance_celsius:
                break
        return state, temperatures

    # ------------------------------------------------------------------
    # Transient
    # ------------------------------------------------------------------
    def _propagator(self, dt_seconds: float) -> np.ndarray:
        """Cache ``exp(-C^-1 G dt)`` for a fixed interval length."""
        if dt_seconds not in self._propagator_cache:
            a = (self._g.T / self._c).T  # C^-1 G, row-scaled
            self._propagator_cache[dt_seconds] = _matrix_exponential(-a * dt_seconds)
        return self._propagator_cache[dt_seconds]

    def advance(
        self,
        state: np.ndarray,
        block_power: Mapping[str, float],
        dt_seconds: float,
    ) -> np.ndarray:
        """Advance the node temperatures by ``dt_seconds`` under constant power.

        Uses the exact solution ``T(t+dt) = T_ss + e^{-C^{-1}G dt} (T(t) - T_ss)``
        where ``T_ss`` is the steady state the system would converge to if the
        interval's power were applied forever.
        """
        if dt_seconds <= 0:
            raise ValueError("dt must be positive")
        steady = self.steady_state_vector(block_power)
        propagator = self._propagator(dt_seconds)
        return steady + propagator @ (np.asarray(state, dtype=float) - steady)

    def block_temperatures(self, state: np.ndarray) -> Dict[str, float]:
        """Per-block temperatures of a node-state vector."""
        return self.network.temperatures_by_block(state)

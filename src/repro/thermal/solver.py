"""Steady-state and transient solvers for the thermal RC network.

* The **steady-state** solve (``G T = P + ambient source``) is used to warm
  the processor up before measurement, iterating with the leakage model until
  the temperatures converge or the emergency limit (381 K) is reached, as the
  paper does.
* The **transient** solve advances the node temperatures over one thermal
  interval using the exact matrix-exponential solution of the linear system
  ``C dT/dt = b - G T`` (power is held constant within the interval).  The
  propagator ``exp(-C^-1 G dt)`` is cached per interval length, keyed by the
  exact ``dt`` value: every steady interval shares one propagator and the
  shorter final interval of a trace (fewer cycles than the configured
  interval) transparently gets its own.  The cache is a bounded LRU
  (:attr:`ThermalSolver.PROPAGATOR_CACHE_SIZE`): campaigns sweeping many
  distinct interval lengths recompute cold propagators instead of growing
  a dense-matrix cache without limit.
* The **batched** kernels (:meth:`ThermalSolver.steady_state_nodes_batch`,
  :meth:`ThermalSolver.advance_nodes_batch`) apply the same factors and
  propagators to (nodes x cells) matrices — one multi-RHS solve and one
  ``gemm`` for a whole campaign sweep.  They are numerically equivalent to
  the per-column calls but not bit-identical (blocked LAPACK/BLAS kernels
  may round the last ulp differently), which is why the result-bearing
  campaign replay path sticks to per-cell solves.

The conductance matrix ``G`` never changes after construction, so it is
**factorized once** and every steady-state solve — including each
iteration of the warm-up fixed point and the implicit steady-state target of
every transient ``advance`` — reuses the factors.  Two factorization
backends exist behind the ``backend`` knob:

* ``"dense"`` — LAPACK LU (``scipy.linalg.lu_factor``).  LAPACK's ``gesv``
  (what ``np.linalg.solve`` wraps) is exactly ``getrf`` + ``getrs``, i.e.
  the same factorization followed by the same triangular solves, so the
  factorized path is bit-identical to solving from scratch; the
  golden-metric suite relies on that.  Without SciPy the steady-state
  solves fall back to ``np.linalg.solve`` per call — slower, but identical
  results (the matrix exponential falls back to scaling-and-squaring, as
  before).
* ``"sparse"`` — SuperLU over the CSC assembly of the same network
  (``scipy.sparse.linalg.splu``; fill-reducing column ordering selectable
  via ``ordering="colamd"|"natural"``).  The RC network couples each node
  only to its floorplan neighbours, so the composite-die matrices the chip
  layer builds are overwhelmingly sparse — at 16 cores (770 nodes, ~1%
  dense) the sparse factorization and solves are an order of magnitude
  faster than dense LU, and the gap widens quadratically with core count.

**Tolerance contract.** Sparse and dense solves are *numerically
equivalent but not bit-identical*: both factorizations are backward-stable,
but they pivot and order eliminations differently, so results agree to
within the conditioning of ``G`` — in practice far tighter than
``rtol=1e-8, atol=1e-8`` (degrees Celsius) on every die this repository
builds, which is the bound ``tests/test_solver_backends.py`` documents and
enforces.  Anything whose contract is *bit-for-bit* (golden fixtures,
capture-vs-replay equivalence, the single-core engine) therefore stays on
the dense path: ``backend="auto"`` only flips to sparse at
:data:`SPARSE_NODE_THRESHOLD` nodes and above, well past every golden
single-core and small-chip die, and falls back to dense when SciPy is
absent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.thermal.rc_model import ThermalRCNetwork

try:  # SciPy gives an exact matrix exponential; fall back to scaling+squaring.
    from scipy.linalg import expm as _expm
except ImportError:  # pragma: no cover - scipy is available in the target env
    _expm = None

try:  # Reusable LU factors for the constant conductance matrix.
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve
except ImportError:  # pragma: no cover - scipy is available in the target env
    _lu_factor = None
    _lu_solve = None

try:  # Sparse backend: SuperLU over the CSC conductance assembly.
    from scipy.sparse.linalg import splu as _splu
except ImportError:  # pragma: no cover - scipy is available in the target env
    _splu = None


#: Accepted values of the solver ``backend`` knob.
SOLVER_BACKENDS = ("auto", "dense", "sparse")

#: ``backend="auto"`` picks sparse at this node count and above.  The
#: single-core die (50 nodes) and the 2/4-core composites (98/194) stay
#: dense — bit-identical to the pre-sparse solver, which the golden
#: fixtures and the capture/replay equivalence contract require — while a
#: 16-core die (770 nodes) and up goes sparse, where SuperLU beats dense LU
#: by an order of magnitude.
SPARSE_NODE_THRESHOLD = 256

#: ``ordering`` knob -> SuperLU ``permc_spec``.  COLAMD is the
#: fill-reducing default; natural ordering factorizes the matrix as
#: assembled (useful to measure how much the ordering buys).
SPLU_ORDERINGS = {"colamd": "COLAMD", "natural": "NATURAL"}


def sparse_backend_available() -> bool:
    """Whether the sparse solver backend (scipy.sparse SuperLU) is importable."""
    return _splu is not None


def resolve_backend(backend: str, num_nodes: int) -> str:
    """Resolve a ``backend`` knob value to ``"dense"`` or ``"sparse"``.

    ``"auto"`` picks sparse at :data:`SPARSE_NODE_THRESHOLD` nodes and
    above when SciPy is available, dense otherwise (including whenever
    SciPy is absent).  An explicit ``"sparse"`` without SciPy raises
    :class:`RuntimeError` rather than silently degrading.
    """
    if backend not in SOLVER_BACKENDS:
        raise ValueError(
            f"solver backend must be one of {', '.join(SOLVER_BACKENDS)}, "
            f"not {backend!r}"
        )
    if backend == "dense":
        return "dense"
    if backend == "sparse":
        if not sparse_backend_available():
            raise RuntimeError(
                "solver_backend='sparse' requires scipy (scipy.sparse.linalg); "
                "install the scipy extra or use 'auto'/'dense'"
            )
        return "sparse"
    if sparse_backend_available() and num_nodes >= SPARSE_NODE_THRESHOLD:
        return "sparse"
    return "dense"


def _matrix_exponential(matrix: np.ndarray) -> np.ndarray:
    """Matrix exponential with a NumPy fallback (scaling and squaring)."""
    if _expm is not None:
        return _expm(matrix)
    # Scaling and squaring with a Taylor series (adequate for the small,
    # well-conditioned matrices of the compact model).
    norm = np.linalg.norm(matrix, ord=np.inf)
    squarings = max(0, int(np.ceil(np.log2(max(norm, 1e-16)))) + 1)
    scaled = matrix / (2 ** squarings)
    result = np.eye(matrix.shape[0])
    term = np.eye(matrix.shape[0])
    for k in range(1, 16):
        term = term @ scaled / k
        result = result + term
    for _ in range(squarings):
        result = result @ result
    return result


class ThermalSolver:
    """Solves the RC network built by :class:`ThermalRCNetwork`.

    ``backend`` selects the factorization (see the module docstring):
    ``"dense"`` (LAPACK LU over the dense ``G``), ``"sparse"`` (SuperLU
    over the CSC assembly) or ``"auto"`` (sparse at
    :data:`SPARSE_NODE_THRESHOLD` nodes and above, dense below — and dense
    whenever SciPy is absent).  ``ordering`` picks SuperLU's fill-reducing
    column permutation and is ignored by the dense backend.  The resolved
    choice is :attr:`backend`; :meth:`set_backend` switches in place.
    """

    #: Upper bound on cached transient propagators.  A single run needs two
    #: (the steady interval plus the shorter final one), but a campaign that
    #: sweeps interval lengths — or replays many traces whose final
    #: intervals all differ — would otherwise grow the cache without limit,
    #: each entry a dense (nodes x nodes) matrix.  Least-recently-used
    #: entries are evicted first; recomputing one is a single ``expm``.
    PROPAGATOR_CACHE_SIZE = 32

    def __init__(
        self,
        network: ThermalRCNetwork,
        backend: str = "auto",
        ordering: str = "colamd",
    ) -> None:
        self.network = network
        if ordering not in SPLU_ORDERINGS:
            raise ValueError(
                f"ordering must be one of {', '.join(SPLU_ORDERINGS)}, "
                f"not {ordering!r}"
            )
        self.ordering = ordering
        #: Cached propagators, keyed by ``(backend, dt)``.  Keying by the
        #: backend as well as the interval length is what makes
        #: :meth:`set_backend` safe: a propagator built from the dense rate
        #: matrix is never served to the sparse backend (whose generator is
        #: assembled from the CSC matrix and may differ in the last ulp),
        #: and vice versa.
        self._propagator_cache: "OrderedDict[Tuple[str, float], np.ndarray]" = (
            OrderedDict()
        )
        #: Cached per-interval affine maps (see :meth:`interval_affine_map`),
        #: keyed like the propagators.
        self._affine_cache: "OrderedDict[Tuple[str, float], Tuple[np.ndarray, np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        # G is symmetric positive definite thanks to the ambient conductance
        # on the sink node, so plain solves are safe.
        self._g = network.conductance
        self._c = network.capacitance
        self._ambient_source = network.ambient_source()
        # Per-backend factorizations and propagator generators, built
        # lazily: resolving to sparse must not pay the O(n^3) dense LU of a
        # 3000-node die it will never use (and vice versa).
        self._lu = None
        self._rate_matrix: Optional[np.ndarray] = None
        self._splu = None
        self._g_sparse = None
        self._rate_matrix_sparse: Optional[np.ndarray] = None
        self.backend = resolve_backend(backend, network.num_nodes)
        self._prepare_backend(self.backend)

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------
    def _prepare_backend(self, backend: str) -> None:
        """Build (once) the factorization of ``backend``.

        Only the linear-solve factorization is eager — it is what every
        steady-state and warmup call needs.  The transient propagator
        generators are built lazily by :meth:`_generator` on the first
        :meth:`advance_nodes`, so a solver used purely for steady solves
        (warmup sweeps, benchmarks) never pays for them.
        """
        if backend == "sparse":
            if _splu is None:
                raise RuntimeError(
                    "solver backend 'sparse' requires scipy (scipy.sparse.linalg)"
                )
            if self._splu is None:
                self._g_sparse = self.network.conductance_sparse()
                self._splu = _splu(
                    self._g_sparse, permc_spec=SPLU_ORDERINGS[self.ordering]
                )
        else:
            if self._lu is None and _lu_factor is not None:
                self._lu = _lu_factor(self._g)

    def set_backend(self, backend: str) -> str:
        """Switch solve backends in place; returns the resolved backend.

        Factorizations are retained per backend (flipping back is free) and
        cached propagators stay keyed by the backend that built them, so a
        toggle mid-process can neither lose work nor serve a stale
        propagator across backends.
        """
        resolved = resolve_backend(backend, self.network.num_nodes)
        self._prepare_backend(resolved)
        self.backend = resolved
        return resolved

    def _generator(self) -> np.ndarray:
        """The current backend's propagator generator ``C^-1 G`` (lazy).

        The sparse backend's generator densifies its own CSC assembly of
        ``G`` — the backend is self-consistent, and the (backend, dt)
        propagator-cache key keeps the two generators' exponentials apart.
        """
        if self.backend == "sparse":
            if self._rate_matrix_sparse is None:
                self._rate_matrix_sparse = (self._g_sparse.toarray().T / self._c).T
            return self._rate_matrix_sparse
        if self._rate_matrix is None:
            # C^-1 G (row-scaled), the generator of every transient
            # propagator.
            self._rate_matrix = (self._g.T / self._c).T
        return self._rate_matrix

    # ------------------------------------------------------------------
    # Linear solves against the constant conductance matrix
    # ------------------------------------------------------------------
    def _solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``G x = rhs`` reusing the precomputed factorization.

        Handles both a single right-hand side (1-D) and the batched
        multi-RHS layout (nodes x cells): LAPACK's ``getrs`` and SuperLU's
        ``solve`` both accept either shape.

        Dense path: ``check_finite=False`` skips SciPy's input-validation
        pass (which costs more than the 50-node triangular solves
        themselves); it does not change the arithmetic.  The rhs is always
        a freshly built temporary, so letting LAPACK overwrite it is safe.
        """
        if self.backend == "sparse":
            return self._splu.solve(rhs)
        if self._lu is not None:
            return _lu_solve(self._lu, rhs, overwrite_b=True, check_finite=False)
        return np.linalg.solve(self._g, rhs)

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------
    def steady_state_nodes(self, node_power: np.ndarray) -> np.ndarray:
        """Steady-state node temperatures (degrees Celsius) for a power vector.

        ``node_power`` injects Watts per thermal node (die blocks first,
        then spreader/sink nodes); the ambient boundary condition is added
        internally.
        """
        return self._solve(node_power + self._ambient_source)

    def steady_state_vector(self, block_power: Mapping[str, float]) -> np.ndarray:
        """Steady-state node temperatures (degrees Celsius) from a block map (W)."""
        return self.steady_state_nodes(self.network.power_vector(block_power))

    def steady_state(self, block_power: Mapping[str, float]) -> Dict[str, float]:
        """Steady-state block temperatures (degrees Celsius) for constant power (W)."""
        return self.network.temperatures_by_block(
            self.steady_state_vector(block_power)
        )

    def warmup_nodes(
        self,
        node_power_at_state: Callable[[np.ndarray], np.ndarray],
        max_iterations: int = 50,
        tolerance_celsius: float = 0.05,
        emergency_limit_celsius: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array fast path of :meth:`warmup`.

        ``node_power_at_state`` maps the current node-state vector (degrees
        Celsius) to the per-node power injection vector (W: dynamic +
        leakage at the state's temperatures).  Iteration stops when the
        largest block-temperature change falls below ``tolerance_celsius``
        (degrees Celsius), or when any block reaches
        ``emergency_limit_celsius`` — the paper warms the processor "until
        temperature converges or reaches the emergency limit (381 K)".

        Returns the final node-state vector and the block-temperature slice
        (both degrees Celsius; the slice is a view of the state in the
        network's block order).
        """
        network = self.network
        state = network.uniform_state(network.config.ambient_celsius)
        block_temps = state[: network.num_blocks]
        limit = (
            emergency_limit_celsius
            if emergency_limit_celsius is not None
            else network.config.emergency_limit_celsius
        )
        for _ in range(max_iterations):
            power = node_power_at_state(state)
            state = self.steady_state_nodes(power)
            new_block_temps = state[: network.num_blocks]
            delta = float(np.max(np.abs(new_block_temps - block_temps)))
            block_temps = new_block_temps
            if float(np.max(block_temps)) >= limit:
                break
            if delta < tolerance_celsius:
                break
        return state, block_temps

    def warmup(
        self,
        power_at_temperature: Callable[[Dict[str, float]], Mapping[str, float]],
        max_iterations: int = 50,
        tolerance_celsius: float = 0.05,
        emergency_limit_celsius: Optional[float] = None,
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Iterate steady-state solves with temperature-dependent power.

        ``power_at_temperature`` maps the current block temperatures
        (degrees Celsius) to the per-block power in Watts (dynamic + leakage
        at those temperatures).  This is the mapping-boundary wrapper over
        :meth:`warmup_nodes`.

        Returns the final node-state vector and the block temperatures
        (degrees Celsius).
        """
        network = self.network

        def node_power_at(state: np.ndarray) -> np.ndarray:
            temperatures = network.temperatures_by_block(state)
            return network.power_vector(power_at_temperature(temperatures))

        state, _ = self.warmup_nodes(
            node_power_at,
            max_iterations=max_iterations,
            tolerance_celsius=tolerance_celsius,
            emergency_limit_celsius=emergency_limit_celsius,
        )
        return state, network.temperatures_by_block(state)

    # ------------------------------------------------------------------
    # Transient
    # ------------------------------------------------------------------
    def _propagator(self, dt_seconds: float) -> np.ndarray:
        """Cache ``exp(-C^-1 G dt)`` per (backend, interval length) — bounded LRU.

        The cache key pairs the active backend with the exact float value
        of ``dt_seconds``.  The ``dt`` half: the steady intervals of a run
        all share one bit-identical ``dt`` (hence one cached propagator),
        while the variable-length final interval — whose ``dt`` is scaled
        by the cycles the trace actually ran — misses the cache and gets a
        propagator of its own instead of silently reusing the
        steady-interval matrix.  The backend half: dense and sparse build
        their generators from different assemblies of ``G``, so a
        :meth:`set_backend` toggle must never be served the other backend's
        exponential (a ``dt``-only key would).  At most
        :attr:`PROPAGATOR_CACHE_SIZE` propagators are retained, oldest-used
        evicted first.
        """
        key = (self.backend, float(dt_seconds))
        cache = self._propagator_cache
        propagator = cache.get(key)
        if propagator is None:
            propagator = _matrix_exponential(self._generator() * (-key[1]))
            cache[key] = propagator
            if len(cache) > self.PROPAGATOR_CACHE_SIZE:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        return propagator

    def advance_nodes(
        self,
        state: np.ndarray,
        node_power: np.ndarray,
        dt_seconds: float,
    ) -> np.ndarray:
        """Advance the node state by ``dt_seconds`` under constant node power.

        ``state`` holds node temperatures in degrees Celsius, ``node_power``
        Watts per node, ``dt_seconds`` seconds.  Uses the exact solution
        ``T(t+dt) = T_ss + e^{-C^{-1}G dt} (T(t) - T_ss)`` where ``T_ss`` is
        the steady state the system would converge to if the interval's
        power were applied forever.
        """
        if dt_seconds <= 0:
            raise ValueError("dt must be positive")
        steady = self.steady_state_nodes(node_power)
        propagator = self._propagator(dt_seconds)
        return steady + propagator @ (np.asarray(state, dtype=float) - steady)

    # ------------------------------------------------------------------
    # Batched transient kernels (many cells, one solver)
    # ------------------------------------------------------------------
    def steady_state_nodes_batch(self, node_power: np.ndarray) -> np.ndarray:
        """Steady-state temperatures for many power vectors at once.

        ``node_power`` is a (nodes x cells) matrix of per-node injections
        (W); one multi-RHS triangular solve against the shared LU factors
        replaces ``cells`` individual solves.  Numerically equivalent to the
        per-column :meth:`steady_state_nodes` (same factorization, same
        recurrences) but **not bit-identical** to it: LAPACK's blocked
        multi-RHS kernels may round the last ulp differently.  The campaign
        replay path therefore propagates result-bearing cells per column,
        and uses the batch kernels where exactness versus the coupled run is
        not contractual (screening, steady-state maps, benchmarks).
        """
        return self._solve(node_power + self._ambient_source[:, None])

    def advance_nodes_batch(
        self,
        states: np.ndarray,
        node_power: np.ndarray,
        dt_seconds: float,
    ) -> np.ndarray:
        """Advance many cells' node states by ``dt_seconds`` in one step.

        ``states`` and ``node_power`` are (nodes x cells) matrices — the
        campaign replay layout, one column per swept cell.  Applies the
        cached LU-factorized propagator to the whole matrix (one ``gemm``
        per interval for the entire sweep).  Shares
        :meth:`steady_state_nodes_batch`'s caveat: equivalent to per-column
        :meth:`advance_nodes` within last-ulp rounding, not bit-identical.
        """
        if dt_seconds <= 0:
            raise ValueError("dt must be positive")
        steady = self.steady_state_nodes_batch(node_power)
        propagator = self._propagator(dt_seconds)
        return steady + propagator @ (np.asarray(states, dtype=float) - steady)

    def interval_affine_map(
        self, dt_seconds: float
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """The one-interval advance as a precomputed affine map, or ``None``.

        :meth:`advance_nodes_batch` evaluates ``T' = T_ss + P (T - T_ss)``
        with a factorized solve for ``T_ss = G^-1 (p + a)`` every interval.
        Factoring the interval length out of the chain instead::

            T' = P T + M p + b,   M = (I - P) G^-1,   b = M a

        turns each interval into two ``gemm``s against constant matrices —
        no per-interval solve.  ``(P, M, b)`` is cached per ``(backend,
        dt)`` next to the propagators.  Applying the explicitly formed
        ``M`` instead of the factorized solve perturbs each interval by
        ~``cond(G) * eps`` relative — orders of magnitude inside the batched
        replay engine's 1e-8 contract, but *not* last-ulp equivalent to
        :meth:`advance_nodes_batch`, which exact-comparable callers keep.

        Returns ``None`` on the sparse backend: a 16-64-core die's ``G^-1``
        is dense and quadratically large, so batch callers fall back to the
        per-interval factorized solve there.
        """
        if dt_seconds <= 0:
            raise ValueError("dt must be positive")
        if self.backend == "sparse":
            return None
        key = (self.backend, float(dt_seconds))
        cached = self._affine_cache.get(key)
        if cached is None:
            propagator = self._propagator(dt_seconds)
            inverse = self._solve(np.eye(self.network.num_nodes))
            source_map = inverse - propagator @ inverse
            offset = (source_map @ self._ambient_source)[:, None]
            cached = (propagator, source_map, offset)
            self._affine_cache[key] = cached
            if len(self._affine_cache) > self.PROPAGATOR_CACHE_SIZE:
                self._affine_cache.popitem(last=False)
        else:
            self._affine_cache.move_to_end(key)
        return cached

    def advance(
        self,
        state: np.ndarray,
        block_power: Mapping[str, float],
        dt_seconds: float,
    ) -> np.ndarray:
        """Advance the node temperatures by ``dt_seconds`` (s) under constant
        per-block power (W)."""
        return self.advance_nodes(
            state, self.network.power_vector(block_power), dt_seconds
        )

    def block_temperatures(self, state: np.ndarray) -> Dict[str, float]:
        """Per-block temperatures (degrees Celsius) of a node-state vector."""
        return self.network.temperatures_by_block(state)

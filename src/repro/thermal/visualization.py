"""Visualization of floorplans and temperature fields.

The paper discusses thermal maps ("as the thermal maps show", Section 4.3);
this module renders them in plain text so they can be inspected in a
terminal, embedded in logs, or asserted on in tests:

* :func:`render_thermal_map` rasterizes per-block temperatures onto a
  character grid using a cold-to-hot glyph ramp;
* :func:`render_block_bar_chart` prints a horizontal bar chart of any
  per-block quantity (temperature, power, area);
* :func:`render_temperature_timeline` prints a sparkline of one block's
  temperature across thermal intervals.

For multi-core composite dies (:mod:`repro.chip`) the text raster is too
coarse, so :func:`save_heatmap_png` renders a true-colour die heatmap —
block temperatures on a cold-to-hot ramp, thin block outlines, and a heavy
outline around each core namespace (``core0.*``, ``core1.*``, ...).  The
PNG is produced by a ~30-line stdlib encoder (``zlib`` + ``struct``), so
the repository needs no plotting dependency.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.thermal.floorplan import Floorplan

#: Cold-to-hot glyph ramp.
GLYPH_RAMP = " .:-=+*#%@"
#: Sparkline glyphs (eight vertical levels).
SPARK_RAMP = "▁▂▃▄▅▆▇█"


def _level(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    fraction = min(1.0, max(0.0, fraction))
    return min(steps - 1, int(round(fraction * (steps - 1))))


def render_thermal_map(
    floorplan: Floorplan,
    temperatures: Mapping[str, float],
    width: int = 72,
    height: int = 28,
) -> str:
    """Rasterize block temperatures onto a ``width`` x ``height`` grid."""
    if width <= 0 or height <= 0:
        raise ValueError("grid dimensions must be positive")
    missing = [name for name in floorplan.block_names if name not in temperatures]
    if missing:
        raise KeyError(f"temperatures missing for blocks: {missing}")
    t_min = min(temperatures[name] for name in floorplan.block_names)
    t_max = max(temperatures[name] for name in floorplan.block_names)
    die_w = floorplan.die_width
    die_h = floorplan.die_height
    blocks = floorplan.blocks()
    rows = []
    for row in range(height):
        y = (row + 0.5) / height * die_h
        line = []
        for col in range(width):
            x = (col + 0.5) / width * die_w
            glyph = " "
            for block in blocks:
                if (block.x <= x < block.x + block.width
                        and block.y <= y < block.y + block.height):
                    level = _level(temperatures[block.name], t_min, t_max, len(GLYPH_RAMP))
                    glyph = GLYPH_RAMP[level]
                    break
            line.append(glyph)
        rows.append("".join(line))
    rows.append(f"coldest {t_min:.1f} C  [{GLYPH_RAMP}]  hottest {t_max:.1f} C")
    return "\n".join(rows)


def render_block_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    top_n: int = 0,
    unit: str = "",
) -> str:
    """Horizontal bar chart of a per-block quantity, largest first."""
    if not values:
        raise ValueError("no values to plot")
    items = sorted(values.items(), key=lambda kv: -kv[1])
    if top_n > 0:
        items = items[:top_n]
    largest = max(value for _, value in items)
    lines = [title] if title else []
    for name, value in items:
        bar_length = 0 if largest <= 0 else int(round(width * value / largest))
        lines.append(f"{name:<10} {'#' * bar_length:<{width}} {value:8.2f}{unit}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# True-colour die heatmaps (multi-core composition aware)
# ----------------------------------------------------------------------
#: Cold-to-hot colour stops (a coolwarm-style diverging ramp).
_COLOR_STOPS: Tuple[Tuple[int, int, int], ...] = (
    (59, 76, 192),  # cold: blue
    (221, 221, 221),  # middle: light grey
    (180, 4, 38),  # hot: red
)
_BLOCK_EDGE = (96, 96, 96)
_CORE_EDGE = (0, 0, 0)


def _ramp_color(fraction: float) -> Tuple[int, int, int]:
    """Interpolate the cold-to-hot ramp at ``fraction`` in [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    segments = len(_COLOR_STOPS) - 1
    position = fraction * segments
    low = min(int(position), segments - 1)
    t = position - low
    a, b = _COLOR_STOPS[low], _COLOR_STOPS[low + 1]
    return tuple(int(round(a[i] + (b[i] - a[i]) * t)) for i in range(3))


def encode_png(pixels: Sequence[Sequence[Tuple[int, int, int]]]) -> bytes:
    """Encode an RGB pixel grid (rows of (r, g, b) triples) as a PNG.

    A minimal, dependency-free truecolor encoder: 8-bit RGB, no interlace,
    filter type 0 on every scanline.  Sufficient for die heatmaps; not a
    general-purpose image library.
    """
    height = len(pixels)
    width = len(pixels[0]) if height else 0
    if not height or not width:
        raise ValueError("cannot encode an empty image")

    def chunk(tag: bytes, data: bytes) -> bytes:
        return (
            struct.pack(">I", len(data))
            + tag
            + data
            + struct.pack(">I", zlib.crc32(tag + data) & 0xFFFFFFFF)
        )

    header = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    raw = bytearray()
    for row in pixels:
        raw.append(0)  # filter type 0 (None)
        for r, g, b in row:
            raw += bytes((r, g, b))
    return (
        b"\x89PNG\r\n\x1a\n"
        + chunk(b"IHDR", header)
        + chunk(b"IDAT", zlib.compress(bytes(raw), 9))
        + chunk(b"IEND", b"")
    )


def _core_bounds(
    floorplan: Floorplan, separator: str
) -> Dict[str, Tuple[float, float, float, float]]:
    """Bounding box (x0, y0, x1, y1) of each core namespace, if any."""
    bounds: Dict[str, Tuple[float, float, float, float]] = {}
    for block in floorplan.blocks():
        if separator not in block.name:
            return {}
        prefix = block.name.split(separator, 1)[0]
        x0, y0, x1, y1 = bounds.get(
            prefix, (float("inf"), float("inf"), float("-inf"), float("-inf"))
        )
        bounds[prefix] = (
            min(x0, block.x),
            min(y0, block.y),
            max(x1, block.x + block.width),
            max(y1, block.y + block.height),
        )
    return bounds if len(bounds) > 1 else {}


def render_heatmap_pixels(
    floorplan: Floorplan,
    temperatures: Mapping[str, float],
    width_px: int = 480,
    core_separator: str = ".",
) -> List[List[Tuple[int, int, int]]]:
    """Rasterize a die heatmap to an RGB pixel grid.

    Blocks are filled with the cold-to-hot ramp (normalized over the die),
    outlined in grey; when the floorplan is a namespaced composition
    (every name ``<core><separator><block>``, more than one core), each
    core's bounding box gets a heavy black outline so the per-core dies read
    at a glance.
    """
    if width_px <= 0:
        raise ValueError("width_px must be positive")
    missing = [name for name in floorplan.block_names if name not in temperatures]
    if missing:
        raise KeyError(f"temperatures missing for blocks: {missing}")
    t_min = min(temperatures[name] for name in floorplan.block_names)
    t_max = max(temperatures[name] for name in floorplan.block_names)
    span = (t_max - t_min) or 1.0
    scale = width_px / floorplan.die_width
    height_px = max(1, int(round(floorplan.die_height * scale)))
    pixels: List[List[Tuple[int, int, int]]] = [
        [(255, 255, 255)] * width_px for _ in range(height_px)
    ]

    def clamp_x(value: float) -> int:
        return min(width_px, max(0, int(round(value * scale))))

    def clamp_y(value: float) -> int:
        return min(height_px, max(0, int(round(value * scale))))

    for block in floorplan.blocks():
        x0, x1 = clamp_x(block.x), clamp_x(block.x + block.width)
        y0, y1 = clamp_y(block.y), clamp_y(block.y + block.height)
        color = _ramp_color((temperatures[block.name] - t_min) / span)
        for y in range(y0, y1):
            row = pixels[y]
            edge_row = y == y0 or y == y1 - 1
            for x in range(x0, x1):
                row[x] = (
                    _BLOCK_EDGE
                    if edge_row or x == x0 or x == x1 - 1
                    else color
                )
    for x0f, y0f, x1f, y1f in _core_bounds(floorplan, core_separator).values():
        x0, x1 = clamp_x(x0f), clamp_x(x1f)
        y0, y1 = clamp_y(y0f), clamp_y(y1f)
        for thickness in range(2):
            for x in range(x0, x1):
                pixels[min(y0 + thickness, height_px - 1)][x] = _CORE_EDGE
                pixels[max(y1 - 1 - thickness, 0)][x] = _CORE_EDGE
            for y in range(y0, y1):
                pixels[y][min(x0 + thickness, width_px - 1)] = _CORE_EDGE
                pixels[y][max(x1 - 1 - thickness, 0)] = _CORE_EDGE
    return pixels


def save_heatmap_png(
    floorplan: Floorplan,
    temperatures: Mapping[str, float],
    path: Union[str, Path],
    width_px: int = 480,
    core_separator: str = ".",
) -> Path:
    """Render a (possibly multi-core) die heatmap and write it as a PNG."""
    pixels = render_heatmap_pixels(
        floorplan, temperatures, width_px=width_px, core_separator=core_separator
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(encode_png(pixels))
    return path


def render_temperature_timeline(
    history: Sequence[Mapping[str, float]],
    block: str,
    width: int = 60,
) -> str:
    """Sparkline of one block's temperature over the recorded intervals."""
    if not history:
        raise ValueError("empty temperature history")
    series = [snapshot[block] for snapshot in history]
    if len(series) > width:
        # Downsample by averaging consecutive chunks.
        chunk = len(series) / width
        series = [
            sum(series[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))])
            / max(1, len(series[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))]))
            for i in range(width)
        ]
    low, high = min(series), max(series)
    glyphs = "".join(SPARK_RAMP[_level(value, low, high, len(SPARK_RAMP))] for value in series)
    return f"{block}: {glyphs}  ({low:.1f} C .. {high:.1f} C)"

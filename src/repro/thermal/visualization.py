"""Text-mode visualization of floorplans and temperature fields.

The paper discusses thermal maps ("as the thermal maps show", Section 4.3);
this module renders them in plain text so they can be inspected in a
terminal, embedded in logs, or asserted on in tests:

* :func:`render_thermal_map` rasterizes per-block temperatures onto a
  character grid using a cold-to-hot glyph ramp;
* :func:`render_block_bar_chart` prints a horizontal bar chart of any
  per-block quantity (temperature, power, area);
* :func:`render_temperature_timeline` prints a sparkline of one block's
  temperature across thermal intervals.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.thermal.floorplan import Floorplan

#: Cold-to-hot glyph ramp.
GLYPH_RAMP = " .:-=+*#%@"
#: Sparkline glyphs (eight vertical levels).
SPARK_RAMP = "▁▂▃▄▅▆▇█"


def _level(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    fraction = min(1.0, max(0.0, fraction))
    return min(steps - 1, int(round(fraction * (steps - 1))))


def render_thermal_map(
    floorplan: Floorplan,
    temperatures: Mapping[str, float],
    width: int = 72,
    height: int = 28,
) -> str:
    """Rasterize block temperatures onto a ``width`` x ``height`` grid."""
    if width <= 0 or height <= 0:
        raise ValueError("grid dimensions must be positive")
    missing = [name for name in floorplan.block_names if name not in temperatures]
    if missing:
        raise KeyError(f"temperatures missing for blocks: {missing}")
    t_min = min(temperatures[name] for name in floorplan.block_names)
    t_max = max(temperatures[name] for name in floorplan.block_names)
    die_w = floorplan.die_width
    die_h = floorplan.die_height
    blocks = floorplan.blocks()
    rows = []
    for row in range(height):
        y = (row + 0.5) / height * die_h
        line = []
        for col in range(width):
            x = (col + 0.5) / width * die_w
            glyph = " "
            for block in blocks:
                if (block.x <= x < block.x + block.width
                        and block.y <= y < block.y + block.height):
                    level = _level(temperatures[block.name], t_min, t_max, len(GLYPH_RAMP))
                    glyph = GLYPH_RAMP[level]
                    break
            line.append(glyph)
        rows.append("".join(line))
    rows.append(f"coldest {t_min:.1f} C  [{GLYPH_RAMP}]  hottest {t_max:.1f} C")
    return "\n".join(rows)


def render_block_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    top_n: int = 0,
    unit: str = "",
) -> str:
    """Horizontal bar chart of a per-block quantity, largest first."""
    if not values:
        raise ValueError("no values to plot")
    items = sorted(values.items(), key=lambda kv: -kv[1])
    if top_n > 0:
        items = items[:top_n]
    largest = max(value for _, value in items)
    lines = [title] if title else []
    for name, value in items:
        bar_length = 0 if largest <= 0 else int(round(width * value / largest))
        lines.append(f"{name:<10} {'#' * bar_length:<{width}} {value:8.2f}{unit}")
    return "\n".join(lines)


def render_temperature_timeline(
    history: Sequence[Mapping[str, float]],
    block: str,
    width: int = 60,
) -> str:
    """Sparkline of one block's temperature over the recorded intervals."""
    if not history:
        raise ValueError("empty temperature history")
    series = [snapshot[block] for snapshot in history]
    if len(series) > width:
        # Downsample by averaging consecutive chunks.
        chunk = len(series) / width
        series = [
            sum(series[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))])
            / max(1, len(series[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))]))
            for i in range(width)
        ]
    low, high = min(series), max(series)
    glyphs = "".join(SPARK_RAMP[_level(value, low, high, len(SPARK_RAMP))] for value in series)
    return f"{block}: {glyphs}  ({low:.1f} C .. {high:.1f} C)"

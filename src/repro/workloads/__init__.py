"""Synthetic SPEC2000-like workloads.

The paper drives its simulator with traces of 26 SPEC2000 applications.  The
reproduction cannot redistribute SPEC binaries or Intel's internal traces, so
this package provides a deterministic synthetic trace generator with one
profile per SPEC2000 application.  Each profile captures the workload
characteristics that actually drive the paper's results: instruction mix,
branch behaviour, memory footprint and locality, inherent ILP (dependency
distances) and loop structure (which determines trace-cache hit behaviour).
"""

from repro.workloads.profiles import (
    SPEC2000_PROFILES,
    SPECINT_NAMES,
    SPECFP_NAMES,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.decode import DecodedWorkload, decode_workload
from repro.workloads.generator import TraceGenerator
from repro.workloads.trace import Trace, TraceStatistics

__all__ = [
    "SPEC2000_PROFILES",
    "SPECINT_NAMES",
    "SPECFP_NAMES",
    "WorkloadProfile",
    "get_profile",
    "TraceGenerator",
    "Trace",
    "TraceStatistics",
    "DecodedWorkload",
    "decode_workload",
]

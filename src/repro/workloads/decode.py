"""Batch decode of a materialized micro-op stream into array form.

The per-uop timing path (:class:`repro.sim.processor.Processor`) reads one
:class:`~repro.isa.microops.MicroOp` object at a time and re-derives the same
per-uop facts — execution class, latency, register indices, trace-line
membership — every time it touches the uop.  The fast timing path
(:class:`repro.sim.fast_timing.FastTimingStage`) instead decodes the whole
workload once up front: :class:`DecodedWorkload` extracts every field into
dense arrays and pre-segments the stream into trace-cache lines (the
16-uop / 3-branch assembly rule of the fetch unit), so the interval loop
touches only integers and never a ``MicroOp`` again.

The decode is purely static: nothing here depends on simulated time, cache
state or steering decisions, so a decoded workload can be reused across
intervals, engines and timing modes.
"""

from __future__ import annotations

from functools import cached_property
from operator import attrgetter
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.isa.microops import OP_LATENCY, MicroOp, UopClass
from repro.isa.registers import RegisterClass, RegisterSpace

#: Dense integer codes for :class:`UopClass`, in enum declaration order.
UOP_CLASS_CODES: Dict[UopClass, int] = {cls: i for i, cls in enumerate(UopClass)}

#: Execution latency indexed by class code (same order as the codes above).
OP_LATENCY_BY_CODE: Tuple[int, ...] = tuple(OP_LATENCY[cls] for cls in UopClass)

CODE_FPADD = UOP_CLASS_CODES[UopClass.FPADD]
CODE_FPMUL = UOP_CLASS_CODES[UopClass.FPMUL]
CODE_FPDIV = UOP_CLASS_CODES[UopClass.FPDIV]
CODE_LOAD = UOP_CLASS_CODES[UopClass.LOAD]
CODE_STORE = UOP_CLASS_CODES[UopClass.STORE]
CODE_COPY = UOP_CLASS_CODES[UopClass.COPY]

FP_CODES = frozenset({CODE_FPADD, CODE_FPMUL, CODE_FPDIV})

# Bulk extractor: one C-level call per uop instead of seven attribute reads.
_FIELDS = attrgetter(
    "pc", "uop_class", "dest", "sources", "mem_addr", "is_branch", "mispredicted"
)
_FP = RegisterClass.FP


class TraceLine(Tuple):
    """Typing alias placeholder; lines are plain tuples (see ``lines``)."""


class DecodedWorkload:
    """A micro-op sequence decoded into parallel arrays plus trace lines.

    Per-uop fields are exposed both as plain Python lists (``*_list``, used
    by the fast core's inner loop, where unboxed-int indexing beats numpy
    scalar extraction) and as numpy arrays (cached properties, used for
    batch/segment computations and by tests).
    """

    def __init__(self, uops: Sequence[MicroOp], num_int_registers: int = None) -> None:
        if num_int_registers is None:
            num_int_registers = RegisterSpace.DEFAULT_INT
        self.num_int_registers = num_int_registers
        codes = UOP_CLASS_CODES
        lat_by_code = OP_LATENCY_BY_CODE
        fp_codes = FP_CODES

        n = len(uops)
        self.n = n
        pc_l: List[int] = []
        cls_l: List[int] = []
        lat_l: List[int] = []
        addr_l: List[int] = []
        isbr_l: List[bool] = []
        mp_l: List[bool] = []
        dest_l: List[int] = []
        destfp_l: List[bool] = []
        srcs_l: List[Tuple[int, ...]] = []
        ineed_l: List[int] = []
        fneed_l: List[int] = []

        for pc, cls, dest, sources, mem_addr, is_branch, mispredicted in map(
            _FIELDS, uops
        ):
            code = codes[cls]
            pc_l.append(pc)
            cls_l.append(code)
            lat_l.append(lat_by_code[code])
            addr_l.append(-1 if mem_addr is None else mem_addr)
            isbr_l.append(is_branch)
            mp_l.append(mispredicted)
            int_needed = 0
            fp_needed = 0
            if dest is None:
                dest_l.append(-1)
                destfp_l.append(False)
            else:
                if dest.reg_class is _FP:
                    dest_l.append(num_int_registers + dest.index)
                    destfp_l.append(True)
                    fp_needed = 1
                else:
                    dest_l.append(dest.index)
                    destfp_l.append(False)
                    int_needed = 1
            if sources:
                flats = []
                for reg in sources:
                    if reg.reg_class is _FP:
                        flats.append(num_int_registers + reg.index)
                        fp_needed += 1
                    else:
                        flats.append(reg.index)
                        int_needed += 1
                srcs_l.append(tuple(flats))
            else:
                srcs_l.append(())
            ineed_l.append(int_needed)
            fneed_l.append(fp_needed)

        self.pc_list = pc_l
        self.cls_list = cls_l
        self.latency_list = lat_l
        self.mem_addr_list = addr_l
        self.is_branch_list = isbr_l
        self.mispredicted_list = mp_l
        self.dest_flat_list = dest_l
        self.dest_is_fp_list = destfp_l
        self.src_flats_list = srcs_l
        self.int_needed_list = ineed_l
        self.fp_needed_list = fneed_l
        self._lines_cache: Dict[Tuple[int, int], list] = {}

    # ------------------------------------------------------------------
    # Array views (derived once, on demand)
    # ------------------------------------------------------------------
    @cached_property
    def op_class(self) -> np.ndarray:
        """Per-uop :class:`UopClass` code (enum declaration order)."""
        return np.asarray(self.cls_list, dtype=np.int64)

    @cached_property
    def latency(self) -> np.ndarray:
        """Per-uop base execution latency (cache-hit latency for memory ops)."""
        return np.asarray(self.latency_list, dtype=np.int64)

    @cached_property
    def mem_addr(self) -> np.ndarray:
        """Per-uop effective address (``-1`` for non-memory uops)."""
        return np.asarray(self.mem_addr_list, dtype=np.int64)

    @cached_property
    def is_branch(self) -> np.ndarray:
        return np.asarray(self.is_branch_list, dtype=bool)

    @cached_property
    def mispredicted(self) -> np.ndarray:
        return np.asarray(self.mispredicted_list, dtype=bool)

    @cached_property
    def dest_flat(self) -> np.ndarray:
        """Per-uop destination register flat index (``-1`` when none)."""
        return np.asarray(self.dest_flat_list, dtype=np.int64)

    @cached_property
    def source_flats(self) -> np.ndarray:
        """``(n, 2)`` source register flat indices, ``-1``-padded."""
        out = np.full((self.n, 2), -1, dtype=np.int64)
        for i, flats in enumerate(self.src_flats_list):
            for j, flat in enumerate(flats):
                out[i, j] = flat
        return out

    @cached_property
    def pc(self) -> np.ndarray:
        return np.asarray(self.pc_list, dtype=np.int64)

    # ------------------------------------------------------------------
    # Trace-line segmentation
    # ------------------------------------------------------------------
    def lines(self, line_uops: int, fetch_width: int) -> list:
        """Pre-segmented trace lines for a fetch configuration.

        Returns a list of tuples ``(start, end, head_pc, fetch_cycles,
        sets_exhausted, branch_positions, mispredicted_positions)`` mirroring
        exactly how :meth:`repro.frontend.fetch.FetchUnit._assemble_line`
        chops the stream: up to ``line_uops`` uops, ending early after the
        third branch.  ``sets_exhausted`` marks the line whose assembly hit
        the end of the stream mid-pull (the cycle at which the reference
        fetch unit latches its ``_exhausted`` flag); positions are relative
        to ``start``.
        """
        key = (line_uops, fetch_width)
        cached = self._lines_cache.get(key)
        if cached is not None:
            return cached
        isbr = self.is_branch_list
        mp = self.mispredicted_list
        pc = self.pc_list
        n = self.n
        lines = []
        i = 0
        while i < n:
            start = i
            limit = i + line_uops
            if limit > n:
                limit = n
            branches = 0
            stopped_by_branch = False
            j = start
            while j < limit:
                hit_branch = isbr[j]
                j += 1
                if hit_branch:
                    branches += 1
                    if branches >= 3:
                        stopped_by_branch = True
                        break
            length = j - start
            # The reference fetch unit only learns the stream is exhausted
            # when an assembly pull raises StopIteration: a line cut short by
            # the stream end (not by the uop cap or the branch rule) is the
            # one that sets the flag.
            sets_exhausted = j == n and length < line_uops and not stopped_by_branch
            branch_positions = tuple(
                k - start for k in range(start, j) if isbr[k]
            )
            mispredicted_positions = tuple(
                k for k in branch_positions if mp[start + k]
            )
            fetch_cycles = -(-length // fetch_width)
            if fetch_cycles < 1:
                fetch_cycles = 1
            lines.append(
                (
                    start,
                    j,
                    pc[start],
                    fetch_cycles,
                    sets_exhausted,
                    branch_positions,
                    mispredicted_positions,
                )
            )
            i = j
        self._lines_cache[key] = lines
        return lines


def decode_workload(
    uops: Sequence[MicroOp], num_int_registers: int = None
) -> DecodedWorkload:
    """Decode a materialized uop sequence (see :class:`DecodedWorkload`)."""
    return DecodedWorkload(uops, num_int_registers)

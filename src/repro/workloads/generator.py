"""Deterministic synthetic micro-op trace generator.

The generator produces a micro-op stream with the statistical properties of a
:class:`~repro.workloads.profiles.WorkloadProfile`:

* a static *program* made of ``num_hot_loops`` loop bodies of
  ``loop_body_uops`` micro-ops each, laid out at consecutive PCs, so the
  trace cache observes realistic reuse and capacity pressure;
* a dynamic walk that stays in one hot loop for ``phase_length_uops``
  micro-ops before hopping to the next, which produces the phase behaviour
  and access bursts the paper's thermal-aware mapping reacts to;
* register dependencies drawn with a geometric distance distribution around
  ``mean_dependency_distance`` (controls achievable ILP);
* memory addresses with tunable spatial locality inside a working set of
  ``working_set_kb`` (controls L1/UL2 miss rates);
* branch outcomes and mispredictions at the profile's rates.

Everything is driven by :class:`random.Random` seeded from the benchmark name
and an explicit seed, so traces are fully reproducible.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, Iterator, List, Optional

from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterClass, RegisterSpace
from repro.workloads.profiles import WorkloadProfile, get_profile
from repro.workloads.trace import Trace

_INSTRUCTION_BYTES = 4
_CACHE_LINE_BYTES = 64


class _StaticUop:
    """Template for one static micro-op slot of a loop body."""

    __slots__ = ("offset", "uop_class", "is_branch")

    def __init__(self, offset: int, uop_class: UopClass, is_branch: bool) -> None:
        self.offset = offset
        self.uop_class = uop_class
        self.is_branch = is_branch


class _LoopBody:
    """A static hot loop: a PC range plus a template micro-op sequence."""

    __slots__ = ("base_pc", "slots", "array_base")

    def __init__(self, base_pc: int, slots: List[_StaticUop], array_base: int) -> None:
        self.base_pc = base_pc
        self.slots = slots
        self.array_base = array_base


class TraceGenerator:
    """Generate synthetic micro-op traces for one benchmark profile.

    Parameters
    ----------
    profile:
        Workload profile, or a benchmark name resolved through
        :func:`repro.workloads.profiles.get_profile`.
    seed:
        Seed for the pseudo-random number generator.  Two generators built
        with the same profile and seed produce identical traces.
    register_space:
        Logical register namespace; defaults to the standard
        :class:`~repro.isa.registers.RegisterSpace`.
    """

    def __init__(
        self,
        profile,
        seed: int = 0,
        register_space: Optional[RegisterSpace] = None,
    ) -> None:
        if isinstance(profile, str):
            profile = get_profile(profile)
        if not isinstance(profile, WorkloadProfile):
            raise TypeError(f"profile must be a WorkloadProfile or name, got {type(profile)}")
        self.profile = profile
        self.seed = seed
        self.registers = register_space or RegisterSpace()
        # ``zlib.crc32`` rather than ``hash()``: string hashing is randomized
        # per process (PYTHONHASHSEED), which would make traces — and every
        # downstream power/thermal number — differ between runs, between
        # spawn-based worker processes, and against cached campaign results.
        self._rng = random.Random(zlib.crc32(profile.name.encode("utf-8")) ^ seed)
        self._loops = self._build_program()
        # Dynamic generation state.
        self._current_loop_index = 0
        self._uops_in_phase = 0
        self._recent_int_dests: List[int] = list(range(4))
        self._recent_fp_dests: List[int] = list(range(4))
        self._next_int_dest = 4
        self._next_fp_dest = 4
        self._sequential_addr = 0

    # ------------------------------------------------------------------
    # Static program construction
    # ------------------------------------------------------------------
    def _build_program(self) -> List[_LoopBody]:
        """Lay out the hot loops of the synthetic program in a PC space."""
        profile = self.profile
        loops: List[_LoopBody] = []
        pc_cursor = 0x4000_0000
        working_set_bytes = profile.working_set_kb * 1024
        data_base = 0x1000_0000
        bytes_per_loop = max(_CACHE_LINE_BYTES, working_set_bytes // profile.num_hot_loops)
        for loop_index in range(profile.num_hot_loops):
            slots = self._build_loop_slots(profile.loop_body_uops)
            loops.append(
                _LoopBody(
                    base_pc=pc_cursor,
                    slots=slots,
                    array_base=data_base + loop_index * bytes_per_loop,
                )
            )
            pc_cursor += (profile.loop_body_uops + 16) * _INSTRUCTION_BYTES
        return loops

    def _build_loop_slots(self, body_size: int) -> List[_StaticUop]:
        """Assign a micro-op class to every static slot of one loop body.

        The per-body counts match the profile's dynamic instruction mix so
        that repeated execution of the body reproduces the mix exactly.
        """
        profile = self.profile
        rng = self._rng
        num_loads = max(0, round(profile.load_fraction * body_size))
        num_stores = max(0, round(profile.store_fraction * body_size))
        num_branches = max(1, round(profile.branch_fraction * body_size))
        num_compute = max(1, body_size - num_loads - num_stores - num_branches)

        classes: List[UopClass] = []
        classes.extend([UopClass.LOAD] * num_loads)
        classes.extend([UopClass.STORE] * num_stores)
        # The final branch of the body is the loop back-edge; intra-body
        # branches are the rest.
        classes.extend([UopClass.BRANCH] * (num_branches - 1))
        for _ in range(num_compute):
            classes.append(self._pick_compute_class(rng))
        rng.shuffle(classes)
        classes.append(UopClass.BRANCH)  # loop back-edge, always last

        slots = [
            _StaticUop(offset=i, uop_class=cls, is_branch=(cls is UopClass.BRANCH))
            for i, cls in enumerate(classes)
        ]
        return slots

    def _pick_compute_class(self, rng: random.Random) -> UopClass:
        profile = self.profile
        use_fp = rng.random() < profile.fp_fraction
        long_op = rng.random() < profile.long_op_fraction
        if use_fp:
            if not long_op:
                return UopClass.FPADD
            return UopClass.FPMUL if rng.random() < 0.8 else UopClass.FPDIV
        if not long_op:
            return UopClass.IALU
        return UopClass.IMUL if rng.random() < 0.85 else UopClass.IDIV

    # ------------------------------------------------------------------
    # Dynamic trace generation
    # ------------------------------------------------------------------
    def generate(self, num_uops: int) -> Trace:
        """Materialize a :class:`~repro.workloads.trace.Trace` of ``num_uops``."""
        if num_uops <= 0:
            raise ValueError("num_uops must be positive")
        return Trace(benchmark=self.profile.name, uops=list(self.stream(num_uops)))

    def stream(self, num_uops: int) -> Iterator[MicroOp]:
        """Yield ``num_uops`` micro-ops without materializing the full trace."""
        if num_uops <= 0:
            raise ValueError("num_uops must be positive")
        produced = 0
        while produced < num_uops:
            loop = self._loops[self._current_loop_index]
            for slot in loop.slots:
                yield self._instantiate(loop, slot)
                produced += 1
                self._uops_in_phase += 1
                if produced >= num_uops:
                    return
            if self._uops_in_phase >= self.profile.phase_length_uops:
                self._advance_phase()

    def _advance_phase(self) -> None:
        """Move to another hot loop (phase change)."""
        self._uops_in_phase = 0
        if len(self._loops) == 1:
            return
        # Mostly move to the next region, occasionally jump to a random one
        # (models irregular control flow between phases).
        if self._rng.random() < 0.8:
            self._current_loop_index = (self._current_loop_index + 1) % len(self._loops)
        else:
            self._current_loop_index = self._rng.randrange(len(self._loops))

    def _instantiate(self, loop: _LoopBody, slot: _StaticUop) -> MicroOp:
        """Create a dynamic micro-op instance from a static slot."""
        profile = self.profile
        rng = self._rng
        pc = loop.base_pc + slot.offset * _INSTRUCTION_BYTES
        uop_class = slot.uop_class

        dest = None
        sources = ()
        mem_addr = None
        is_branch = slot.is_branch
        branch_taken = False
        mispredicted = False

        if uop_class is UopClass.BRANCH:
            is_back_edge = slot.offset == len(loop.slots) - 1
            if is_back_edge:
                branch_taken = True
            else:
                branch_taken = rng.random() < profile.branch_taken_rate
            mispredicted = rng.random() < profile.branch_misprediction_rate
            sources = (self._pick_source(RegisterClass.INT),)
        elif uop_class is UopClass.LOAD:
            dest = self._allocate_dest(RegisterClass.INT)
            sources = (self._pick_source(RegisterClass.INT),)
            mem_addr = self._next_address(loop)
        elif uop_class is UopClass.STORE:
            sources = (
                self._pick_source(RegisterClass.INT),
                self._pick_source(RegisterClass.INT),
            )
            mem_addr = self._next_address(loop)
        else:
            reg_class = RegisterClass.FP if uop_class in (
                UopClass.FPADD, UopClass.FPMUL, UopClass.FPDIV,
            ) else RegisterClass.INT
            dest = self._allocate_dest(reg_class)
            sources = (
                self._pick_source(reg_class),
                self._pick_source(reg_class),
            )

        return MicroOp(
            pc=pc,
            uop_class=uop_class,
            dest=dest,
            sources=sources,
            mem_addr=mem_addr,
            is_branch=is_branch,
            branch_taken=branch_taken,
            mispredicted=mispredicted,
            end_of_trace=is_branch,
        )

    # ------------------------------------------------------------------
    # Register and address selection
    # ------------------------------------------------------------------
    def _allocate_dest(self, reg_class: RegisterClass):
        """Allocate the next destination register (round-robin over the space)."""
        if reg_class is RegisterClass.INT:
            index = self._next_int_dest % self.registers.num_int
            self._next_int_dest += 1
            self._recent_int_dests.append(index)
            if len(self._recent_int_dests) > 16:
                self._recent_int_dests.pop(0)
            return self.registers.int_reg(index)
        index = self._next_fp_dest % self.registers.num_fp
        self._next_fp_dest += 1
        self._recent_fp_dests.append(index)
        if len(self._recent_fp_dests) > 16:
            self._recent_fp_dests.pop(0)
        return self.registers.fp_reg(index)

    def _pick_source(self, reg_class: RegisterClass):
        """Pick a source register among recently produced values.

        The distance (in destinations) between producer and consumer follows
        a geometric distribution whose mean is the profile's
        ``mean_dependency_distance``.
        """
        recents = (
            self._recent_int_dests
            if reg_class is RegisterClass.INT
            else self._recent_fp_dests
        )
        mean = self.profile.mean_dependency_distance
        p = 1.0 / max(1.0, mean)
        distance = 1
        while self._rng.random() > p and distance < len(recents):
            distance += 1
        index = recents[-min(distance, len(recents))]
        if reg_class is RegisterClass.INT:
            return self.registers.int_reg(index)
        return self.registers.fp_reg(index)

    #: Size of the per-loop hot region that sequential accesses sweep over;
    #: it is capped so that hot-region accesses mostly hit in the 16 KB L1.
    _HOT_SPAN_BYTES = 12 * 1024

    def _next_address(self, loop: _LoopBody) -> int:
        """Generate the next data address for a memory micro-op.

        With probability ``spatial_locality`` the access walks sequentially
        over the loop's hot region (mostly L1 hits); otherwise it touches the
        loop's full array or, occasionally, a random location of the whole
        working set (L1 misses that mostly hit in the UL2 once warm).
        """
        profile = self.profile
        working_set_bytes = profile.working_set_kb * 1024
        span = max(_CACHE_LINE_BYTES * 4, working_set_bytes // profile.num_hot_loops)
        hot_span = min(span, self._HOT_SPAN_BYTES)
        roll = self._rng.random()
        if roll < profile.spatial_locality:
            # Sequential (stride ~ 8 bytes) access within the loop's hot region.
            self._sequential_addr = (self._sequential_addr + 8) % hot_span
            return loop.array_base + self._sequential_addr
        if roll < profile.spatial_locality + (1.0 - profile.spatial_locality) * 0.7:
            # Strided / irregular access within the loop's own array.
            return loop.array_base + self._rng.randrange(span)
        # Random access anywhere in the working set.
        return 0x1000_0000 + self._rng.randrange(working_set_bytes)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def static_footprint_uops(self) -> int:
        """Number of static micro-ops in the synthetic program."""
        return sum(len(loop.slots) for loop in self._loops)

    def describe(self) -> str:
        """One-line human-readable description of the generator's program."""
        return (
            f"{self.profile.name}: {len(self._loops)} hot loops x "
            f"{self.profile.loop_body_uops} uops, working set "
            f"{self.profile.working_set_kb} KB"
        )


def generate_traces(
    benchmarks: Iterable[str],
    uops_per_benchmark: int,
    seed: int = 0,
    honor_relative_length: bool = True,
) -> List[Trace]:
    """Generate one trace per benchmark name.

    When ``honor_relative_length`` is set, each benchmark's length is scaled
    by its profile's ``relative_length``, mirroring the paper's shorter traces
    for eon, fma3d, mcf, perlbmk and swim.
    """
    traces = []
    for name in benchmarks:
        profile = get_profile(name)
        length = uops_per_benchmark
        if honor_relative_length:
            length = max(1, int(round(uops_per_benchmark * profile.relative_length)))
        traces.append(TraceGenerator(profile, seed=seed).generate(length))
    return traces

"""Per-benchmark workload profiles for the 26 SPEC2000 applications.

Each :class:`WorkloadProfile` parameterizes the synthetic trace generator so
that the generated micro-op stream has the instruction mix, branch behaviour,
memory locality and inherent parallelism typical of the corresponding SPEC
CPU2000 benchmark.  The values are drawn from widely published
characterization studies of SPEC2000 (instruction mix, branch misprediction
rates, L1/L2 miss behaviour); they do not need to be exact — the paper's
techniques respond to activity *rates* and their spatial distribution, which
these parameters control.

The paper runs each benchmark for 200 M instructions (a few benchmarks have
shorter traces: eon 127 M, fma3d 30 M, mcf 156 M, perlbmk 58 M, swim 112 M).
The reproduction keeps those *relative* lengths through
:attr:`WorkloadProfile.relative_length` and scales the absolute count down to
keep pure-Python simulation tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark used by the trace generator.

    Attributes
    ----------
    name:
        SPEC2000 benchmark name (e.g. ``"gcc"``).
    is_fp:
        Whether the benchmark belongs to CFP2000 (otherwise CINT2000).
    load_fraction / store_fraction:
        Fraction of dynamic micro-ops that are loads / stores.
    branch_fraction:
        Fraction of dynamic micro-ops that are branches.
    branch_taken_rate:
        Probability that a branch is taken.
    branch_misprediction_rate:
        Probability that a branch is mispredicted by the modelled frontend.
    fp_fraction:
        Fraction of *computation* micro-ops that use the FP datapath.
    long_op_fraction:
        Fraction of computation micro-ops with long latency (mul/div).
    mean_dependency_distance:
        Mean distance (in micro-ops) between a value producer and its
        consumer; smaller values mean longer dependence chains and lower ILP.
    working_set_kb:
        Approximate primary working set, controls L1/L2 miss rates via the
        address generator.
    spatial_locality:
        Probability that a memory access falls in the same cache line as a
        recent access (stride-1 style behaviour).
    loop_body_uops:
        Typical number of micro-ops in the hot loop bodies; controls
        trace-cache reuse (small hot loops → high trace-cache hit rates).
    num_hot_loops:
        Number of distinct hot code regions the generator cycles through;
        controls instruction footprint and trace-cache capacity pressure.
    phase_length_uops:
        Number of micro-ops spent in one hot region before moving to the
        next; controls burstiness of frontend activity.
    relative_length:
        Trace length relative to the standard 200 M-instruction slice
        (1.0 = 200 M).  Taken from Section 4 of the paper.
    """

    name: str
    is_fp: bool
    load_fraction: float
    store_fraction: float
    branch_fraction: float
    branch_taken_rate: float
    branch_misprediction_rate: float
    fp_fraction: float
    long_op_fraction: float
    mean_dependency_distance: float
    working_set_kb: int
    spatial_locality: float
    loop_body_uops: int
    num_hot_loops: int
    phase_length_uops: int
    relative_length: float = 1.0

    def __post_init__(self) -> None:
        fractions = (
            self.load_fraction,
            self.store_fraction,
            self.branch_fraction,
            self.branch_taken_rate,
            self.branch_misprediction_rate,
            self.fp_fraction,
            self.long_op_fraction,
            self.spatial_locality,
        )
        for value in fractions:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"profile {self.name}: fraction {value} outside [0, 1]")
        if self.load_fraction + self.store_fraction + self.branch_fraction >= 1.0:
            raise ValueError(
                f"profile {self.name}: load+store+branch fractions must leave room "
                "for computation micro-ops"
            )
        if self.mean_dependency_distance < 1.0:
            raise ValueError(f"profile {self.name}: dependency distance must be >= 1")
        if self.working_set_kb <= 0 or self.loop_body_uops <= 0:
            raise ValueError(f"profile {self.name}: sizes must be positive")
        if self.num_hot_loops <= 0 or self.phase_length_uops <= 0:
            raise ValueError(f"profile {self.name}: loop structure must be positive")
        if not 0.0 < self.relative_length <= 1.0:
            raise ValueError(f"profile {self.name}: relative_length must be in (0, 1]")

    @property
    def compute_fraction(self) -> float:
        """Fraction of micro-ops that are neither memory nor branch."""
        return 1.0 - self.load_fraction - self.store_fraction - self.branch_fraction

    @property
    def suite(self) -> str:
        """``"CFP2000"`` or ``"CINT2000"``."""
        return "CFP2000" if self.is_fp else "CINT2000"


def _int(name: str, **kwargs) -> WorkloadProfile:
    return WorkloadProfile(name=name, is_fp=False, **kwargs)


def _fp(name: str, **kwargs) -> WorkloadProfile:
    return WorkloadProfile(name=name, is_fp=True, **kwargs)


#: The twelve CINT2000 benchmarks.
_CINT: Tuple[WorkloadProfile, ...] = (
    _int(
        "gzip",
        load_fraction=0.22, store_fraction=0.10, branch_fraction=0.17,
        branch_taken_rate=0.60, branch_misprediction_rate=0.07,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=4.0, working_set_kb=180,
        spatial_locality=0.80, loop_body_uops=48, num_hot_loops=10,
        phase_length_uops=5000,
    ),
    _int(
        "vpr",
        load_fraction=0.28, store_fraction=0.11, branch_fraction=0.15,
        branch_taken_rate=0.55, branch_misprediction_rate=0.09,
        fp_fraction=0.10, long_op_fraction=0.02,
        mean_dependency_distance=3.5, working_set_kb=2048,
        spatial_locality=0.55, loop_body_uops=64, num_hot_loops=14,
        phase_length_uops=4000,
    ),
    _int(
        "gcc",
        load_fraction=0.26, store_fraction=0.13, branch_fraction=0.20,
        branch_taken_rate=0.62, branch_misprediction_rate=0.06,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=3.0, working_set_kb=4096,
        spatial_locality=0.60, loop_body_uops=120, num_hot_loops=60,
        phase_length_uops=2500,
    ),
    _int(
        "mcf",
        load_fraction=0.35, store_fraction=0.09, branch_fraction=0.19,
        branch_taken_rate=0.50, branch_misprediction_rate=0.08,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=2.5, working_set_kb=65536,
        spatial_locality=0.25, loop_body_uops=40, num_hot_loops=8,
        phase_length_uops=6000, relative_length=0.78,
    ),
    _int(
        "crafty",
        load_fraction=0.27, store_fraction=0.08, branch_fraction=0.11,
        branch_taken_rate=0.58, branch_misprediction_rate=0.08,
        fp_fraction=0.00, long_op_fraction=0.02,
        mean_dependency_distance=4.5, working_set_kb=2048,
        spatial_locality=0.70, loop_body_uops=80, num_hot_loops=25,
        phase_length_uops=3000,
    ),
    _int(
        "parser",
        load_fraction=0.24, store_fraction=0.10, branch_fraction=0.18,
        branch_taken_rate=0.57, branch_misprediction_rate=0.09,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=3.2, working_set_kb=8192,
        spatial_locality=0.50, loop_body_uops=56, num_hot_loops=30,
        phase_length_uops=3500,
    ),
    _int(
        "eon",
        load_fraction=0.28, store_fraction=0.16, branch_fraction=0.10,
        branch_taken_rate=0.62, branch_misprediction_rate=0.03,
        fp_fraction=0.25, long_op_fraction=0.05,
        mean_dependency_distance=4.5, working_set_kb=512,
        spatial_locality=0.75, loop_body_uops=96, num_hot_loops=16,
        phase_length_uops=4500, relative_length=0.635,
    ),
    _int(
        "perlbmk",
        load_fraction=0.27, store_fraction=0.14, branch_fraction=0.18,
        branch_taken_rate=0.60, branch_misprediction_rate=0.05,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=3.4, working_set_kb=4096,
        spatial_locality=0.65, loop_body_uops=100, num_hot_loops=40,
        phase_length_uops=3000, relative_length=0.29,
    ),
    _int(
        "gap",
        load_fraction=0.25, store_fraction=0.11, branch_fraction=0.14,
        branch_taken_rate=0.59, branch_misprediction_rate=0.04,
        fp_fraction=0.02, long_op_fraction=0.03,
        mean_dependency_distance=3.8, working_set_kb=16384,
        spatial_locality=0.60, loop_body_uops=72, num_hot_loops=20,
        phase_length_uops=4000,
    ),
    _int(
        "vortex",
        load_fraction=0.29, store_fraction=0.18, branch_fraction=0.15,
        branch_taken_rate=0.61, branch_misprediction_rate=0.02,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=4.0, working_set_kb=8192,
        spatial_locality=0.70, loop_body_uops=110, num_hot_loops=45,
        phase_length_uops=2800,
    ),
    _int(
        "bzip2",
        load_fraction=0.26, store_fraction=0.09, branch_fraction=0.14,
        branch_taken_rate=0.58, branch_misprediction_rate=0.07,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=4.2, working_set_kb=4096,
        spatial_locality=0.75, loop_body_uops=52, num_hot_loops=12,
        phase_length_uops=5500,
    ),
    _int(
        "twolf",
        load_fraction=0.27, store_fraction=0.08, branch_fraction=0.16,
        branch_taken_rate=0.54, branch_misprediction_rate=0.10,
        fp_fraction=0.05, long_op_fraction=0.02,
        mean_dependency_distance=3.0, working_set_kb=1024,
        spatial_locality=0.45, loop_body_uops=68, num_hot_loops=18,
        phase_length_uops=3200,
    ),
)

#: The fourteen CFP2000 benchmarks.
_CFP: Tuple[WorkloadProfile, ...] = (
    _fp(
        "wupwise",
        load_fraction=0.23, store_fraction=0.10, branch_fraction=0.06,
        branch_taken_rate=0.80, branch_misprediction_rate=0.01,
        fp_fraction=0.60, long_op_fraction=0.15,
        mean_dependency_distance=6.0, working_set_kb=16384,
        spatial_locality=0.85, loop_body_uops=140, num_hot_loops=8,
        phase_length_uops=8000,
    ),
    _fp(
        "swim",
        load_fraction=0.30, store_fraction=0.09, branch_fraction=0.02,
        branch_taken_rate=0.90, branch_misprediction_rate=0.01,
        fp_fraction=0.70, long_op_fraction=0.10,
        mean_dependency_distance=7.0, working_set_kb=131072,
        spatial_locality=0.90, loop_body_uops=200, num_hot_loops=6,
        phase_length_uops=10000, relative_length=0.56,
    ),
    _fp(
        "mgrid",
        load_fraction=0.33, store_fraction=0.05, branch_fraction=0.02,
        branch_taken_rate=0.92, branch_misprediction_rate=0.01,
        fp_fraction=0.72, long_op_fraction=0.12,
        mean_dependency_distance=6.5, working_set_kb=57344,
        spatial_locality=0.88, loop_body_uops=220, num_hot_loops=5,
        phase_length_uops=9000,
    ),
    _fp(
        "applu",
        load_fraction=0.28, store_fraction=0.09, branch_fraction=0.03,
        branch_taken_rate=0.88, branch_misprediction_rate=0.01,
        fp_fraction=0.68, long_op_fraction=0.18,
        mean_dependency_distance=6.0, working_set_kb=98304,
        spatial_locality=0.85, loop_body_uops=260, num_hot_loops=7,
        phase_length_uops=8500,
    ),
    _fp(
        "mesa",
        load_fraction=0.26, store_fraction=0.14, branch_fraction=0.09,
        branch_taken_rate=0.70, branch_misprediction_rate=0.03,
        fp_fraction=0.40, long_op_fraction=0.08,
        mean_dependency_distance=4.5, working_set_kb=4096,
        spatial_locality=0.75, loop_body_uops=120, num_hot_loops=20,
        phase_length_uops=4000,
    ),
    _fp(
        "galgel",
        load_fraction=0.30, store_fraction=0.07, branch_fraction=0.05,
        branch_taken_rate=0.85, branch_misprediction_rate=0.02,
        fp_fraction=0.65, long_op_fraction=0.12,
        mean_dependency_distance=6.8, working_set_kb=24576,
        spatial_locality=0.80, loop_body_uops=160, num_hot_loops=9,
        phase_length_uops=7000,
    ),
    _fp(
        "art",
        load_fraction=0.34, store_fraction=0.06, branch_fraction=0.09,
        branch_taken_rate=0.78, branch_misprediction_rate=0.02,
        fp_fraction=0.55, long_op_fraction=0.10,
        mean_dependency_distance=5.0, working_set_kb=3072,
        spatial_locality=0.35, loop_body_uops=72, num_hot_loops=4,
        phase_length_uops=9000,
    ),
    _fp(
        "equake",
        load_fraction=0.36, store_fraction=0.08, branch_fraction=0.07,
        branch_taken_rate=0.82, branch_misprediction_rate=0.02,
        fp_fraction=0.58, long_op_fraction=0.14,
        mean_dependency_distance=5.5, working_set_kb=32768,
        spatial_locality=0.60, loop_body_uops=130, num_hot_loops=6,
        phase_length_uops=8000,
    ),
    _fp(
        "facerec",
        load_fraction=0.28, store_fraction=0.07, branch_fraction=0.05,
        branch_taken_rate=0.84, branch_misprediction_rate=0.02,
        fp_fraction=0.62, long_op_fraction=0.11,
        mean_dependency_distance=6.2, working_set_kb=12288,
        spatial_locality=0.82, loop_body_uops=150, num_hot_loops=10,
        phase_length_uops=6500,
    ),
    _fp(
        "ammp",
        load_fraction=0.30, store_fraction=0.09, branch_fraction=0.08,
        branch_taken_rate=0.75, branch_misprediction_rate=0.02,
        fp_fraction=0.60, long_op_fraction=0.20,
        mean_dependency_distance=4.8, working_set_kb=20480,
        spatial_locality=0.50, loop_body_uops=140, num_hot_loops=12,
        phase_length_uops=5500,
    ),
    _fp(
        "lucas",
        load_fraction=0.24, store_fraction=0.10, branch_fraction=0.02,
        branch_taken_rate=0.93, branch_misprediction_rate=0.01,
        fp_fraction=0.70, long_op_fraction=0.16,
        mean_dependency_distance=7.2, working_set_kb=49152,
        spatial_locality=0.87, loop_body_uops=240, num_hot_loops=5,
        phase_length_uops=9500,
    ),
    _fp(
        "fma3d",
        load_fraction=0.29, store_fraction=0.13, branch_fraction=0.07,
        branch_taken_rate=0.80, branch_misprediction_rate=0.02,
        fp_fraction=0.55, long_op_fraction=0.13,
        mean_dependency_distance=5.4, working_set_kb=28672,
        spatial_locality=0.72, loop_body_uops=180, num_hot_loops=25,
        phase_length_uops=5000, relative_length=0.15,
    ),
    _fp(
        "sixtrack",
        load_fraction=0.26, store_fraction=0.10, branch_fraction=0.06,
        branch_taken_rate=0.83, branch_misprediction_rate=0.02,
        fp_fraction=0.64, long_op_fraction=0.17,
        mean_dependency_distance=5.8, working_set_kb=1024,
        spatial_locality=0.80, loop_body_uops=300, num_hot_loops=10,
        phase_length_uops=7500,
    ),
    _fp(
        "apsi",
        load_fraction=0.28, store_fraction=0.12, branch_fraction=0.05,
        branch_taken_rate=0.86, branch_misprediction_rate=0.02,
        fp_fraction=0.62, long_op_fraction=0.15,
        mean_dependency_distance=6.0, working_set_kb=98304,
        spatial_locality=0.78, loop_body_uops=190, num_hot_loops=9,
        phase_length_uops=7000,
    ),
)

#: All 26 SPEC2000 benchmark profiles used in the paper, keyed by name.
SPEC2000_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in _CINT + _CFP
}

SPECINT_NAMES: Tuple[str, ...] = tuple(p.name for p in _CINT)
SPECFP_NAMES: Tuple[str, ...] = tuple(p.name for p in _CFP)


def get_profile(name: str) -> WorkloadProfile:
    """Return the profile for benchmark or scenario ``name``.

    SPEC2000 benchmark names resolve from :data:`SPEC2000_PROFILES`; any
    other name falls back to the scenario library
    (:mod:`repro.scenarios`), which registers profiles for its named
    workload scenarios.  The fallback import is lazy and happens wherever a
    trace is generated — including campaign worker processes — so scenario
    names are valid everywhere benchmark names are.

    Raises
    ------
    KeyError
        If the name is neither a benchmark nor a scenario, with a message
        listing all valid names.
    """
    try:
        return SPEC2000_PROFILES[name]
    except KeyError:
        pass
    # Imported lazily: repro.scenarios builds its profiles from this module,
    # so a top-level import would be circular.
    from repro.scenarios import SCENARIO_PROFILES

    try:
        return SCENARIO_PROFILES[name]
    except KeyError:
        valid = ", ".join(sorted(SPEC2000_PROFILES) + sorted(SCENARIO_PROFILES))
        raise KeyError(
            f"unknown benchmark or scenario {name!r}; valid names: {valid}"
        ) from None

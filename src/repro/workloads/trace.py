"""Trace containers and trace-level statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.isa.microops import MicroOp, UopClass


@dataclass
class TraceStatistics:
    """Aggregate statistics of a generated trace (used for validation)."""

    num_uops: int = 0
    num_loads: int = 0
    num_stores: int = 0
    num_branches: int = 0
    num_taken_branches: int = 0
    num_mispredicted: int = 0
    num_fp: int = 0
    num_long_ops: int = 0
    distinct_pcs: int = 0
    distinct_cache_lines: int = 0

    @property
    def load_fraction(self) -> float:
        return self.num_loads / self.num_uops if self.num_uops else 0.0

    @property
    def store_fraction(self) -> float:
        return self.num_stores / self.num_uops if self.num_uops else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.num_branches / self.num_uops if self.num_uops else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.num_mispredicted / self.num_branches if self.num_branches else 0.0

    @property
    def taken_rate(self) -> float:
        return self.num_taken_branches / self.num_branches if self.num_branches else 0.0

    @property
    def fp_fraction(self) -> float:
        return self.num_fp / self.num_uops if self.num_uops else 0.0


@dataclass
class Trace:
    """A micro-op trace for one benchmark run.

    The simulator consumes the trace sequentially; the workload generator can
    also be used in streaming mode (see
    :meth:`repro.workloads.generator.TraceGenerator.stream`) to avoid
    materializing long traces.
    """

    benchmark: str
    uops: List[MicroOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.uops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.uops)

    def __getitem__(self, index):
        return self.uops[index]

    def statistics(self) -> TraceStatistics:
        """Compute aggregate statistics over the trace."""
        return compute_statistics(self.uops)


_LONG_OPS = frozenset({UopClass.IMUL, UopClass.IDIV, UopClass.FPMUL, UopClass.FPDIV})
_CACHE_LINE_BYTES = 64


def compute_statistics(uops: Sequence[MicroOp]) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for a sequence of micro-ops."""
    stats = TraceStatistics()
    pcs = set()
    lines = set()
    for uop in uops:
        stats.num_uops += 1
        pcs.add(uop.pc)
        if uop.is_load:
            stats.num_loads += 1
        if uop.is_store:
            stats.num_stores += 1
        if uop.mem_addr is not None:
            lines.add(uop.mem_addr // _CACHE_LINE_BYTES)
        if uop.is_branch:
            stats.num_branches += 1
            if uop.branch_taken:
                stats.num_taken_branches += 1
            if uop.mispredicted:
                stats.num_mispredicted += 1
        if uop.is_fp:
            stats.num_fp += 1
        if uop.uop_class in _LONG_OPS:
            stats.num_long_ops += 1
    stats.distinct_pcs = len(pcs)
    stats.distinct_cache_lines = len(lines)
    return stats

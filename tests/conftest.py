"""Shared fixtures for the unit and integration tests."""

from __future__ import annotations

import pytest

from repro.core.presets import baseline_config


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen",
        action="store_true",
        default=False,
        help="regenerate the golden-metric fixtures under tests/golden/",
    )
from repro.isa.registers import RegisterSpace
from repro.sim.config import ProcessorConfig
from repro.workloads.generator import TraceGenerator


@pytest.fixture
def config() -> ProcessorConfig:
    """The paper's baseline configuration."""
    return baseline_config()


@pytest.fixture
def register_space() -> RegisterSpace:
    return RegisterSpace()


@pytest.fixture
def small_trace():
    """A short, deterministic gzip-like micro-op trace."""
    return TraceGenerator("gzip", seed=42).generate(1200)


@pytest.fixture
def fp_trace():
    """A short, deterministic swim-like (FP-heavy) micro-op trace."""
    return TraceGenerator("swim", seed=42).generate(1200)

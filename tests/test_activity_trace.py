"""Properties of activity traces and timing keys (the two-stage contract).

The replay fast path rests on one claim: *timing never reads the physics
config*.  These tests pin that claim down from both sides — specs differing
only in physics axes produce identical timing keys and byte-identical
captured traces, every timing axis perturbs the key, and every
temperature-feedback mechanism (thermal-aware mapping, feedback-bearing DTM
policies) is excluded from capture and replay.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.campaign import Campaign, ExperimentSettings
from repro.core.presets import bank_hopping_config, baseline_config
from repro.dtm import POLICIES, make_policy
from repro.sim.activity_trace import (
    ActivityTrace,
    TraceRecorder,
    timing_feedback_reason,
)
from repro.sim.config import ProcessorConfig
from repro.sim.engine import SimulationEngine
from repro.workloads.generator import TraceGenerator

SETTINGS = ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_500, seed=7)


def _spec(config: ProcessorConfig, settings: ExperimentSettings = SETTINGS, **kwargs):
    campaign = Campaign.single(config, settings)
    spec = campaign.cells()[0]
    return dataclasses.replace(spec, **kwargs) if kwargs else spec


def _physics_variant(config: ProcessorConfig, index: int, **power_changes) -> ProcessorConfig:
    changes = power_changes or {"leakage_fraction_at_ambient": 0.25 + 0.05 * index}
    return dataclasses.replace(
        config,
        name=f"variant_{index}",
        power=dataclasses.replace(config.power, **changes),
    )


# ----------------------------------------------------------------------
# Timing keys
# ----------------------------------------------------------------------
def test_physics_axes_do_not_perturb_the_timing_key():
    """Package/leakage/frequency (and the config name) are physics-side."""
    base = _spec(baseline_config())
    variants = [
        _physics_variant(baseline_config(), 1),
        _physics_variant(baseline_config(), 2, frequency_ghz=8.0),
        _physics_variant(baseline_config(), 3, vdd=1.0),
        dataclasses.replace(
            baseline_config(),
            name="cool_package",
            thermal=dataclasses.replace(
                baseline_config().thermal, convection_resistance_k_per_w=0.12
            ),
        ),
    ]
    for config in variants:
        assert _spec(config).timing_key() == base.timing_key()
        # ... while the full cache key still tells the cells apart.
        assert _spec(config).cache_key() != base.cache_key()


@pytest.mark.parametrize(
    "change",
    [
        {"benchmark": "swim"},
        {"trace_uops": 2_000},
        {"interval_cycles": 1_000},
        {"seed": 8},
    ],
)
def test_every_timing_axis_perturbs_the_key(change):
    base = _spec(baseline_config())
    assert _spec(baseline_config(), **change).timing_key() != base.timing_key()


def test_timing_side_config_changes_perturb_the_key():
    base = _spec(baseline_config())
    frontend = dataclasses.replace(baseline_config().frontend, fetch_width=4)
    narrow = dataclasses.replace(baseline_config(), name="narrow", frontend=frontend)
    assert _spec(narrow).timing_key() != base.timing_key()


def test_non_feedback_dtm_policy_shares_the_timing_key():
    """``None`` and the no-op policy produce the same instruction stream."""
    base = _spec(baseline_config())
    with_none = _spec(baseline_config(), dtm_policy="none")
    assert with_none.timing_key() == base.timing_key()
    assert with_none.cache_key() != base.cache_key()


# ----------------------------------------------------------------------
# Feedback exclusion
# ----------------------------------------------------------------------
def test_every_feedback_bearing_policy_is_excluded_from_replay():
    """Each registered DTM policy except the no-op must force coupled runs."""
    for name in POLICIES:
        policy = make_policy(name)
        spec = _spec(baseline_config(), dtm_policy=name)
        if name == "none":
            assert policy.feedback is False
            assert spec.replayable
            assert spec.replay_reason() is None
        else:
            assert policy.feedback is True
            assert not spec.replayable
            assert "actuates on temperatures" in spec.replay_reason()


def test_temperature_steered_mapping_is_excluded_from_replay():
    biased = (
        dataclasses.replace(
            baseline_config().frontend.trace_cache, thermal_aware_mapping=True
        )
    )
    config = dataclasses.replace(
        baseline_config(),
        name="biased",
        frontend=dataclasses.replace(baseline_config().frontend, trace_cache=biased),
    )
    assert "thermal-aware" in timing_feedback_reason(config)
    assert not _spec(config).replayable
    # ... and the engine refuses to capture such a run at all.
    trace = TraceGenerator("gzip", seed=7).generate(1_000)
    engine = SimulationEngine(config, trace.uops, "gzip", interval_cycles=800)
    with pytest.raises(ValueError, match="thermal-aware"):
        engine.run_with_trace()


def test_engine_refuses_capture_under_feedback_dtm():
    trace = TraceGenerator("gzip", seed=7).generate(1_000)
    engine = SimulationEngine(
        baseline_config(),
        trace.uops,
        "gzip",
        interval_cycles=800,
        dtm_policy=make_policy("dvfs"),
    )
    with pytest.raises(ValueError, match="actuates on temperatures"):
        engine.run_with_trace()


# ----------------------------------------------------------------------
# Captured traces
# ----------------------------------------------------------------------
def _capture(config: ProcessorConfig) -> ActivityTrace:
    from repro.campaign import scale_paper_intervals

    scaled = scale_paper_intervals(config, 800)
    trace = TraceGenerator("gzip", seed=7).generate(1_500)
    engine = SimulationEngine(scaled, trace.uops, "gzip", interval_cycles=800)
    _, captured = engine.run_with_trace()
    return captured


def test_physics_variants_capture_byte_identical_traces():
    """The strongest form of the no-feedback claim: the serialized trace of
    a physics variant is byte-for-byte the trace of the base config."""
    reference = _capture(baseline_config()).to_json()
    for index, changes in enumerate(
        [{}, {"frequency_ghz": 8.0}, {"leakage_fraction_at_ambient": 0.6}], start=1
    ):
        variant = _physics_variant(baseline_config(), index, **(changes or {"vdd": 1.0}))
        assert _capture(variant).to_json() == reference


def test_trace_round_trips_through_json():
    trace = _capture(bank_hopping_config())
    clone = ActivityTrace.from_json(trace.to_json())
    assert clone.to_json() == trace.to_json()
    assert clone.benchmark == trace.benchmark
    assert clone.block_names == trace.block_names
    assert np.array_equal(clone.counts, trace.counts)
    assert np.array_equal(clone.cycles, trace.cycles)
    assert np.array_equal(clone.end_cycles, trace.end_cycles)
    assert np.array_equal(clone.gated_masks, trace.gated_masks)
    assert clone.stats.__dict__ == trace.stats.__dict__


def test_trace_schema_version_is_enforced():
    trace = _capture(baseline_config())
    data = trace.to_dict()
    data["trace_schema_version"] = 999
    with pytest.raises(ValueError, match="schema version"):
        ActivityTrace.from_dict(data)


def test_recorder_refuses_empty_runs():
    recorder = TraceRecorder("gzip", ("a", "b"), 800)
    with pytest.raises(ValueError, match="zero intervals"):
        recorder.finish(stats=_capture(baseline_config()).stats)


def test_hopping_trace_records_the_gating_schedule():
    trace = _capture(bank_hopping_config())
    assert trace.gated_masks is not None
    assert trace.gated_masks.shape == trace.counts.shape
    # Exactly one bank gated per interval under rotation hopping.
    assert set(trace.gated_masks.sum(axis=1).tolist()) == {1}
    # The rotation moves: not every interval gates the same bank.
    assert len({tuple(row) for row in trace.gated_masks}) > 1


def test_trace_provenance_round_trips_and_versions():
    """Schema v2 stamps timing-side provenance into the trace document."""
    from repro.sim.activity_trace import TRACE_SCHEMA_VERSION

    assert TRACE_SCHEMA_VERSION == 2
    stream = TraceGenerator("gzip", seed=7).generate(1_000)
    engine = SimulationEngine(
        baseline_config(), stream.uops, "gzip", interval_cycles=800
    )
    _, trace = engine.run_with_trace(
        trace_provenance={"seed": 11, "trace_uops": 2000}
    )
    assert trace.provenance == {"seed": 11, "trace_uops": 2000}
    clone = ActivityTrace.from_json(trace.to_json())
    assert clone.provenance == trace.provenance
    # An old-version document is refused (the cache keys it away anyway).
    data = trace.to_dict()
    data["trace_schema_version"] = 1
    with pytest.raises(ValueError, match="schema version"):
        ActivityTrace.from_dict(data)

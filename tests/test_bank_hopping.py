"""Unit tests for the bank-hopping controller (Section 3.2.1)."""

import pytest

from repro.core.bank_hopping import BankHoppingController


def test_initially_gates_the_extra_bank():
    controller = BankHoppingController(physical_banks=3, active_banks=2,
                                       hop_interval_cycles=100)
    assert controller.gated_banks == [2]
    assert controller.enabled_banks == [0, 1]


def test_hop_rotates_over_every_bank():
    controller = BankHoppingController(3, 2, hop_interval_cycles=100)
    gated_sequence = [controller.gated_banks[0]]
    for _ in range(5):
        controller.hop()
        gated_sequence.append(controller.gated_banks[0])
    assert gated_sequence[:4] == [2, 1, 0, 2]
    assert controller.num_hops == 5
    # Always exactly one gated bank, always two enabled.
    assert all(len(controller.enabled_banks) == 2 for _ in [0])


def test_should_hop_only_on_interval_boundaries():
    controller = BankHoppingController(3, 2, hop_interval_cycles=50)
    assert not controller.should_hop(0)
    assert not controller.should_hop(49)
    assert controller.should_hop(50)
    assert controller.should_hop(100)
    assert not controller.should_hop(101)


def test_disabled_controller_never_hops():
    controller = BankHoppingController(3, 2, hop_interval_cycles=50, enabled=False,
                                       static_gated_banks=[2])
    assert controller.gated_banks == [2]
    assert not controller.should_hop(50)
    with pytest.raises(RuntimeError):
        controller.hop()


def test_static_gated_banks_are_skipped_by_the_rotation():
    controller = BankHoppingController(physical_banks=4, active_banks=2,
                                       hop_interval_cycles=10, static_gated_banks=[3])
    assert 3 in controller.gated_banks
    seen = set()
    for _ in range(6):
        controller.hop()
        rotating = [b for b in controller.gated_banks if b != 3]
        assert rotating and rotating[0] != 3
        seen.add(rotating[0])
    assert seen == {0, 1, 2}


def test_is_gated_helper():
    controller = BankHoppingController(3, 2, 100)
    assert controller.is_gated(2)
    assert not controller.is_gated(0)


def test_validation_of_bank_counts():
    with pytest.raises(ValueError):
        BankHoppingController(2, 3, 100)
    with pytest.raises(ValueError):
        BankHoppingController(3, 2, 0)
    with pytest.raises(ValueError):
        BankHoppingController(3, 2, 100, static_gated_banks=[5])
    with pytest.raises(ValueError):
        BankHoppingController(3, 3, 100, static_gated_banks=[0])

"""Unit tests for the gshare branch predictor."""

import pytest

from repro.frontend.branch_predictor import BranchPredictor
from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterSpace

SPACE = RegisterSpace()


def _branch(pc, taken):
    return MicroOp(pc=pc, uop_class=UopClass.BRANCH, sources=(SPACE.int_reg(0),),
                   branch_taken=taken)


def test_size_must_be_power_of_two():
    with pytest.raises(ValueError):
        BranchPredictor(1000)
    with pytest.raises(ValueError):
        BranchPredictor(0)


def test_learns_always_taken_branch():
    predictor = BranchPredictor(256)
    for _ in range(50):
        predictor.predict_and_update(_branch(0x400, True))
    assert predictor.predict(0x400) is True
    assert predictor.accuracy > 0.9


def test_learns_never_taken_branch():
    predictor = BranchPredictor(256)
    for _ in range(50):
        predictor.predict_and_update(_branch(0x800, False))
    assert predictor.predict(0x800) is False


def test_counters_saturate():
    predictor = BranchPredictor(64)
    for _ in range(100):
        predictor.update(0x10, True)
    # After heavy training a single not-taken outcome does not flip it.
    predictor.update(0x10, False)
    assert predictor.predict(0x10) is True


def test_rejects_non_branch_uop():
    predictor = BranchPredictor(64)
    alu = MicroOp(pc=0, uop_class=UopClass.IALU, dest=SPACE.int_reg(0))
    with pytest.raises(ValueError):
        predictor.predict_and_update(alu)


def test_accuracy_starts_at_zero():
    assert BranchPredictor(64).accuracy == 0.0


def test_lookup_counter_increments():
    predictor = BranchPredictor(64)
    predictor.predict(0x4)
    predictor.predict(0x8)
    assert predictor.lookups == 2

"""Integration tests of the campaign subsystem: spec expansion, executors,
serial/parallel equivalence and the end-to-end cache path."""

import pytest

from repro.campaign import (
    Campaign,
    ExperimentSettings,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    run_campaign,
)
from repro.campaign import executors as executors_module
from repro.core.presets import baseline_config, distributed_rename_commit_config
from repro.sim.results import METRIC_NAMES

GROUPS = ("Frontend", "ReorderBuffer", "TraceCache")


@pytest.fixture(scope="module")
def smoke_campaign():
    return Campaign(
        [baseline_config(), distributed_rename_commit_config()],
        ExperimentSettings.smoke(),
        name="smoke",
    )


def _metric_fingerprint(summaries):
    """Every number a figure could read off the summaries, for equality checks."""
    fingerprint = {}
    for name, summary in summaries.items():
        fingerprint[name] = {
            "ipc": summary.mean_ipc(),
            "power": summary.mean_power(),
            "tc_hit_rate": summary.mean_trace_cache_hit_rate(),
            "cycles": {b: r.stats.cycles for b, r in summary.results.items()},
            "metrics": {
                group: [summary.mean_metric(group, metric) for metric in METRIC_NAMES]
                for group in GROUPS
            },
        }
    return fingerprint


def test_campaign_expansion_is_config_major(smoke_campaign):
    cells = smoke_campaign.cells()
    assert len(cells) == len(smoke_campaign) == 4
    assert [(c.config.name, c.benchmark) for c in cells] == [
        ("baseline", "gzip"),
        ("baseline", "swim"),
        ("distributed_rc", "gzip"),
        ("distributed_rc", "swim"),
    ]
    interval = smoke_campaign.settings.resolved_interval_cycles()
    for cell in cells:
        # The cell's config carries the scaled intervals, so executing it
        # needs no settings context.
        assert cell.config.thermal.interval_cycles == interval
        assert cell.config.frontend.trace_cache.hop_interval_cycles == interval
        assert cell.interval_cycles == interval
        assert cell.seed == smoke_campaign.settings.seed
    # swim honours the paper's relative trace length (shorter than gzip).
    assert cells[1].trace_uops < cells[0].trace_uops


def test_campaign_validates_inputs():
    settings = ExperimentSettings.smoke()
    with pytest.raises(ValueError):
        Campaign([], settings)
    with pytest.raises(ValueError):
        Campaign([baseline_config(), baseline_config()], settings)


def test_cache_keys_identify_cell_content(smoke_campaign):
    cells = smoke_campaign.cells()
    keys = {cell.cache_key() for cell in cells}
    assert len(keys) == len(cells)
    # Keys are a pure function of content: re-expanding yields the same keys.
    assert [c.cache_key() for c in smoke_campaign.cells()] == [
        c.cache_key() for c in cells
    ]
    # Changing the scale changes every key.
    rescaled = Campaign(
        smoke_campaign.configs,
        ExperimentSettings(benchmarks=("gzip", "swim"), uops_per_benchmark=4_000),
    )
    assert {c.cache_key() for c in rescaled.cells()}.isdisjoint(keys)


def test_parallel_executor_matches_serial(smoke_campaign):
    """Acceptance: ParallelExecutor(jobs=2) is metric-identical to serial."""
    serial = run_campaign(smoke_campaign, executor=SerialExecutor())
    parallel = run_campaign(smoke_campaign, executor=ParallelExecutor(jobs=2))
    assert serial.cells_executed == parallel.cells_executed == 4
    assert _metric_fingerprint(serial.summaries) == _metric_fingerprint(
        parallel.summaries
    )


def test_cached_rerun_performs_zero_simulator_invocations(
    smoke_campaign, tmp_path, monkeypatch
):
    """Acceptance: a repeated campaign with the cache enabled simulates nothing."""
    cache = ResultCache(tmp_path / "cache")
    first = run_campaign(smoke_campaign, executor=SerialExecutor(), cache=cache)
    assert first.cells_executed == 4 and first.cache_hits == 0
    assert cache.stores == 4

    # Any simulator invocation in the second run is a hard failure.
    def _explode(spec):
        raise AssertionError(f"cell {spec.benchmark} was simulated despite the cache")

    monkeypatch.setattr(executors_module, "execute_cell", _explode)
    rerun_executor = SerialExecutor()
    second = run_campaign(smoke_campaign, executor=rerun_executor, cache=cache)
    assert second.cells_executed == 0
    assert rerun_executor.cells_executed == 0
    assert second.cache_hits == 4
    assert _metric_fingerprint(first.summaries) == _metric_fingerprint(second.summaries)


def test_legacy_shims_accept_executor_and_cache(tmp_path):
    from repro.campaign import summarize, summarize_many

    settings = ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_500)
    cache = ResultCache(tmp_path / "cache")
    summary = summarize(baseline_config(), settings, cache=cache)
    assert cache.stores == 1
    summaries = summarize_many([baseline_config()], settings, cache=cache)
    assert cache.hits == 1
    assert summaries["baseline"].mean_ipc() == summary.mean_ipc()


def test_results_carry_settings_provenance(smoke_campaign):
    outcome = run_campaign(
        Campaign.single(baseline_config(), ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_500))
    )
    result = outcome.summaries["baseline"].results["gzip"]
    assert result.provenance["benchmark"] == "gzip"
    assert result.provenance["trace_uops"] == 1_500
    assert result.provenance["seed"] == 1
    assert result.provenance["interval_cycles"] == 800


# ----------------------------------------------------------------------
# Worker-death containment
# ----------------------------------------------------------------------


def _exit_on_marker_benchmark(task):
    """Module-level (picklable) task fn that kills its worker process."""
    import os

    os._exit(23)


def test_parallel_executor_reports_killed_worker_as_typed_error():
    """A worker process dying mid-task surfaces as ExecutorTaskError with
    the failed task attached, not as a raw BrokenProcessPool."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.campaign.executors import ExecutorTaskError

    executor = ParallelExecutor(jobs=2)
    settings = ExperimentSettings(
        benchmarks=("gzip", "swim"), uops_per_benchmark=1_000
    )
    # Two specs so the pool path runs (a single task degrades to inline
    # execution, where killing the "worker" would kill the test process).
    specs = Campaign.single(baseline_config(), settings).cells()
    with pytest.raises(ExecutorTaskError) as excinfo:
        executor.run_tasks(_exit_on_marker_benchmark, specs)
    assert "worker process died" in str(excinfo.value)
    assert "gzip" in str(excinfo.value)  # the failed spec is identified
    assert excinfo.value.task is specs[0]
    assert not isinstance(excinfo.value, BrokenProcessPool)
    assert isinstance(excinfo.value.__cause__, BrokenProcessPool)


def test_parallel_executor_still_runs_after_typed_failure():
    from repro.campaign.executors import ExecutorTaskError, execute_cell

    executor = ParallelExecutor(jobs=2)
    settings = ExperimentSettings(
        benchmarks=("gzip", "swim"), uops_per_benchmark=1_000
    )
    specs = Campaign.single(baseline_config(), settings).cells()
    with pytest.raises(ExecutorTaskError):
        executor.run_tasks(_exit_on_marker_benchmark, specs)
    # A fresh dispatch on the same executor works: the broken pool was not
    # left wedged in shared state.
    results = executor.run_tasks(execute_cell, specs)
    assert [r.benchmark for r in results] == ["gzip", "swim"]

"""Unit tests of the content-keyed result cache (round-trip through
sim/serialization, miss handling, key hygiene)."""

import json

import pytest

from repro.campaign import Campaign, ExperimentSettings, ResultCache, execute_cell
from repro.core.presets import baseline_config
from repro.sim.serialization import SCHEMA_VERSION


@pytest.fixture(scope="module")
def cell():
    settings = ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_500)
    return Campaign.single(baseline_config(), settings).cells()[0]


@pytest.fixture(scope="module")
def simulated(cell):
    return execute_cell(cell)


def test_store_then_load_roundtrips_through_serialization(tmp_path, cell, simulated):
    cache = ResultCache(tmp_path / "cache")
    assert cache.load(cell) is None
    assert cache.misses == 1

    path = cache.store(cell, simulated)
    assert path.exists()
    assert json.loads(path.read_text())["schema_version"] == SCHEMA_VERSION

    loaded = cache.load(cell)
    assert cache.hits == 1
    assert loaded is not None
    assert loaded.stats.cycles == simulated.stats.cycles
    assert loaded.provenance == simulated.provenance
    for group in ("Frontend", "TraceCache"):
        original = simulated.temperature_metrics(group)
        restored = loaded.temperature_metrics(group)
        for metric, value in original.items():
            assert restored[metric] == pytest.approx(value)
    assert len(cache) == 1


def test_cache_key_embeds_schema_and_package_versions(tmp_path, cell):
    import repro

    cache = ResultCache(tmp_path / "cache")
    assert cache.path_for(cell).name.startswith(
        f"v{SCHEMA_VERSION}-{repro.__version__}-"
    )


def test_cache_directory_expands_user(tmp_path, monkeypatch):
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = ResultCache("~/repro-cache")
    assert cache.directory == tmp_path / "repro-cache"
    assert "~" not in str(cache.directory)


def test_corrupt_entries_are_misses(tmp_path, cell, simulated):
    cache = ResultCache(tmp_path / "cache")
    cache.store(cell, simulated)
    cache.path_for(cell).write_text("{not json")
    assert cache.load(cell) is None

    # A well-formed file with a wrong schema is also a miss, not an error.
    cache.path_for(cell).write_text(json.dumps({"schema_version": 999}))
    assert cache.load(cell) is None
    assert cache.misses == 2


def test_cache_directory_is_created(tmp_path):
    nested = tmp_path / "a" / "b" / "cache"
    ResultCache(nested)
    assert nested.is_dir()

"""Unit tests of the content-keyed result cache (round-trip through
sim/serialization, miss handling, key hygiene)."""

import json

import pytest

from repro.campaign import Campaign, ExperimentSettings, ResultCache, execute_cell
from repro.core.presets import baseline_config
from repro.sim.serialization import SCHEMA_VERSION


@pytest.fixture(scope="module")
def cell():
    settings = ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_500)
    return Campaign.single(baseline_config(), settings).cells()[0]


@pytest.fixture(scope="module")
def simulated(cell):
    return execute_cell(cell)


def test_store_then_load_roundtrips_through_serialization(tmp_path, cell, simulated):
    cache = ResultCache(tmp_path / "cache")
    assert cache.load(cell) is None
    assert cache.misses == 1

    path = cache.store(cell, simulated)
    assert path.exists()
    assert json.loads(path.read_text())["schema_version"] == SCHEMA_VERSION

    loaded = cache.load(cell)
    assert cache.hits == 1
    assert loaded is not None
    assert loaded.stats.cycles == simulated.stats.cycles
    assert loaded.provenance == simulated.provenance
    for group in ("Frontend", "TraceCache"):
        original = simulated.temperature_metrics(group)
        restored = loaded.temperature_metrics(group)
        for metric, value in original.items():
            assert restored[metric] == pytest.approx(value)
    assert len(cache) == 1


def test_cache_key_embeds_schema_and_package_versions(tmp_path, cell):
    import repro

    cache = ResultCache(tmp_path / "cache")
    assert cache.path_for(cell).name.startswith(
        f"v{SCHEMA_VERSION}-{repro.__version__}-"
    )


def test_cache_directory_expands_user(tmp_path, monkeypatch):
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = ResultCache("~/repro-cache")
    assert cache.directory == tmp_path / "repro-cache"
    assert "~" not in str(cache.directory)


def test_corrupt_entries_are_misses(tmp_path, cell, simulated):
    cache = ResultCache(tmp_path / "cache")
    cache.store(cell, simulated)
    cache.path_for(cell).write_text("{not json")
    assert cache.load(cell) is None

    # A well-formed file with a wrong schema is also a miss, not an error.
    cache.path_for(cell).write_text(json.dumps({"schema_version": 999}))
    assert cache.load(cell) is None
    assert cache.misses == 2


def test_cache_directory_is_created(tmp_path):
    nested = tmp_path / "a" / "b" / "cache"
    ResultCache(nested)
    assert nested.is_dir()


# ----------------------------------------------------------------------
# Activity-trace artifacts
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def captured(cell):
    from repro.campaign import execute_cell_capture

    _, trace = execute_cell_capture(cell)
    return trace


def test_trace_artifacts_roundtrip(tmp_path, cell, captured):
    import numpy as np

    cache = ResultCache(tmp_path / "cache")
    key = cell.timing_key()
    assert cache.load_trace(key) is None
    assert cache.trace_misses == 1

    path = cache.store_trace(key, captured)
    assert path.exists() and path.name.endswith(".trace.bin")
    loaded = cache.load_trace(key)
    assert cache.trace_hits == 1
    assert loaded.to_json() == captured.to_json()
    assert np.array_equal(loaded.counts, captured.counts)
    # Trace artifacts are not campaign cells.
    assert len(cache) == 0


def test_trace_key_embeds_schema_and_package_versions(tmp_path, cell):
    import repro
    from repro.sim.activity_trace import TRACE_SCHEMA_VERSION

    cache = ResultCache(tmp_path / "cache")
    assert cache.trace_path_for(cell.timing_key()).name.startswith(
        f"trace-v{TRACE_SCHEMA_VERSION}-{repro.__version__}-"
    )


def test_corrupt_trace_artifacts_are_misses(tmp_path, cell, captured):
    cache = ResultCache(tmp_path / "cache")
    key = cell.timing_key()
    cache.store_trace(key, captured)
    cache.trace_path_for(key).write_text("{not json")
    assert cache.load_trace(key) is None
    cache.trace_path_for(key).write_text(json.dumps({"trace_schema_version": 999}))
    assert cache.load_trace(key) is None
    assert cache.trace_misses == 2


# ----------------------------------------------------------------------
# Housekeeping: stats and prune
# ----------------------------------------------------------------------
def test_stats_report_results_and_traces_separately(tmp_path, cell, simulated, captured):
    cache = ResultCache(tmp_path / "cache")
    assert cache.stats() == {
        "results": 0,
        "result_bytes": 0,
        "traces": 0,
        "trace_bytes": 0,
        "total_bytes": 0,
    }
    cache.store(cell, simulated)
    cache.store_trace(cell.timing_key(), captured)
    stats = cache.stats()
    assert stats["results"] == 1 and stats["traces"] == 1
    assert stats["result_bytes"] > 0 and stats["trace_bytes"] > 0
    assert stats["total_bytes"] == stats["result_bytes"] + stats["trace_bytes"]


def test_prune_removes_oldest_entries_down_to_the_budget(
    tmp_path, cell, simulated, captured
):
    import os

    cache = ResultCache(tmp_path / "cache")
    result_path = cache.store(cell, simulated)
    trace_path = cache.store_trace(cell.timing_key(), captured)
    # Make the result strictly older than the trace artifact.
    os.utime(result_path, (1, 1))

    stats = cache.stats()
    report = cache.prune(max_bytes=stats["trace_bytes"])
    assert report["removed"] == 1
    assert not result_path.exists() and trace_path.exists()
    assert report["remaining_bytes"] == cache.stats()["total_bytes"]

    # Prune to zero clears everything; pruning an empty cache is a no-op.
    assert cache.prune(max_bytes=0)["removed"] == 1
    assert cache.prune(max_bytes=0) == {
        "removed": 0,
        "removed_bytes": 0,
        "remaining_bytes": 0,
    }
    with pytest.raises(ValueError):
        cache.prune(max_bytes=-1)


def test_stats_and_prune_tolerate_entries_vanishing_after_listing(
    tmp_path, cell, simulated, captured
):
    """The list-then-stat window of a shared cache directory is racy.

    A concurrent prune (another process, the service janitor) can evict an
    entry between the directory listing and the ``stat`` call; both
    ``stats()`` and ``prune()`` must treat the vanished file as already gone
    instead of raising ``FileNotFoundError``.
    """
    cache = ResultCache(tmp_path / "cache")
    cache.store(cell, simulated)
    cache.store_trace(cell.timing_key(), captured)
    ghost = cache.directory / "v0-0.0-evicted-by-a-concurrent-prune.json"
    real_result_files = cache._result_files
    cache._result_files = lambda: real_result_files() + [ghost]

    stats = cache.stats()
    assert stats["results"] == 1 and stats["traces"] == 1

    report = cache.prune(max_bytes=0)
    assert report["removed"] == 2
    assert report["remaining_bytes"] == 0


def test_concurrent_stores_prunes_and_stats_never_raise(tmp_path, cell, simulated):
    """Stores, prunes and stats hammering one directory stay exception-free."""
    import threading

    cache = ResultCache(tmp_path / "cache")
    errors = []
    stop = threading.Event()

    def guard(fn):
        try:
            while not stop.is_set():
                fn()
        except BaseException as error:  # noqa: BLE001 - recorded for the assert
            errors.append(error)

    def writer():
        cache.store(cell, simulated)

    def pruner():
        cache.prune(max_bytes=0)

    def reader():
        cache.stats()

    threads = [
        threading.Thread(target=guard, args=(fn,))
        for fn in (writer, pruner, reader, pruner)
    ]
    for thread in threads:
        thread.start()
    # Let the writer/pruner/stats loops overlap for a moment, then stop.
    import time

    time.sleep(0.5)
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    assert not errors, errors

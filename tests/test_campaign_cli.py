"""Tests of the ``repro-campaign`` command-line interface."""

import json

import pytest

from repro.campaign.cli import main


def test_list_presets(capsys):
    assert main(["list-presets"]) == 0
    out = capsys.readouterr().out
    for name in ("baseline", "distributed_rc", "bank_hopping", "distributed_frontend"):
        assert name in out


def test_list_benchmarks(capsys):
    assert main(["list-benchmarks"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out and "swim" in out
    assert len(out.strip().splitlines()) == 26


def test_floorplan_command(capsys):
    assert main(["floorplan", "baseline"]) == 0
    assert "Floorplan for configuration 'baseline'" in capsys.readouterr().out


def test_run_adhoc_campaign_with_cache_and_output(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    output = tmp_path / "summary.json"
    argv = [
        "run",
        "--configs", "baseline",
        "--benchmarks", "gzip",
        "--uops", "1200",
        "--cache-dir", str(cache_dir),
        "--output", str(output),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "1 simulated, 0 replayed, 0 from cache" in first

    payload = json.loads(output.read_text())
    assert payload["cells_executed"] == 1
    summary = payload["configurations"]["baseline"]
    assert summary["benchmarks"] == ["gzip"]
    assert summary["mean_ipc"] > 0
    assert "Frontend" in summary["temperature_metrics"]

    # Re-running the same campaign is served entirely from the cache.
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "0 simulated, 0 replayed, 1 from cache" in second
    assert json.loads(output.read_text())["cells_executed"] == 0


def test_run_figure_writes_table_and_json(tmp_path, capsys):
    output = tmp_path / "fig01.json"
    argv = [
        "run",
        "--figure", "fig01",
        "--benchmarks", "gzip",
        "--uops", "1200",
        "--output", str(output),
    ]
    assert main(argv) == 0
    assert "Figure 1" in capsys.readouterr().out
    payload = json.loads(output.read_text())
    assert payload["figure"] == "fig01"
    assert "baseline" in payload["configurations"]


def test_unknown_command_is_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_domain_errors_become_cli_errors(capsys):
    assert main(["run", "--configs", "notaconfig"]) == 2
    assert "not a valid FrontendOrganization" in capsys.readouterr().err
    assert main(["run", "--benchmarks", "gzip", "--uops", "0"]) == 2
    assert "uops_per_benchmark must be positive" in capsys.readouterr().err
    assert main(["run", "--benchmarks", "nosuchbench"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_cache_stats_and_prune_subcommands(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    # Populate the cache (results + trace artifacts) with a tiny campaign.
    assert main([
        "run", "--configs", "baseline", "--benchmarks", "gzip",
        "--uops", "1200", "--cache-dir", str(cache_dir),
    ]) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "results: 1 entries" in out
    assert "traces : 1 artifacts" in out

    assert main([
        "cache", "prune", "--cache-dir", str(cache_dir), "--max-bytes", "0",
    ]) == 0
    assert "pruned 2 entries" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    assert "results: 0 entries" in capsys.readouterr().out

    # prune without a budget is a usage error, reported CLI-style.
    assert main(["cache", "prune", "--cache-dir", str(cache_dir)]) == 2
    assert "requires --max-bytes" in capsys.readouterr().err


def test_malformed_dtm_specs_become_one_line_errors(capsys):
    """Malformed --dtm policy specs exit 2 with a message, never a traceback."""
    argv = ["run", "--configs", "baseline", "--benchmarks", "gzip"]
    assert main(argv + ["--dtm", "dvfs:target"]) == 2
    err = capsys.readouterr().err
    assert "malformed DTM policy parameter 'target'" in err
    assert "Traceback" not in err

    assert main(argv + ["--dtm", "bogus_policy"]) == 2
    err = capsys.readouterr().err
    assert "unknown DTM policy 'bogus_policy'" in err
    assert "valid names:" in err

    assert main(argv + ["--dtm", "dvfs:target=hot"]) == 2
    assert "is not a number" in capsys.readouterr().err

    assert main(argv + ["--dtm", "duty=0.5"]) == 2
    assert "misplaced DTM policy parameter" in capsys.readouterr().err


def test_unknown_scenario_names_become_one_line_errors(capsys):
    assert main(["run", "--benchmarks", "not_a_scenario"]) == 2
    err = capsys.readouterr().err
    assert "unknown benchmark or scenario 'not_a_scenario'" in err
    assert "valid names:" in err
    assert "Traceback" not in err

    # The same friendliness covers per-core scenario mixes.
    assert main(["run", "--per-core-scenarios", "gzip+nosuch"]) == 2
    assert "unknown benchmark or scenario 'nosuch'" in capsys.readouterr().err


def test_chip_options_are_validated(capsys):
    assert main(["run", "--cores", "0"]) == 2
    assert "--cores must be at least 1" in capsys.readouterr().err

    assert main(["run", "--cores", "2", "--per-core-scenarios", "gzip+swim+mcf"]) == 2
    assert "has 3 threads" in capsys.readouterr().err

    assert main(["run", "--figure", "fig01", "--cores", "2"]) == 2
    assert "--figure multicore" in capsys.readouterr().err

    assert main(
        ["run", "--cores", "2", "--benchmarks", "gzip", "--dtm", "fetch_throttle"]
    ) == 2
    assert "unknown chip DTM policy" in capsys.readouterr().err


def test_run_chip_campaign_from_cli(tmp_path, capsys):
    output = tmp_path / "chip.json"
    argv = [
        "run",
        "--configs", "baseline",
        "--per-core-scenarios", "thermal_virus+idle_crawl",
        "--uops", "1200",
        "--output", str(output),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "1 mixes on 2-core chips" in out
    assert "2 simulated, 1 replayed" in out
    payload = json.loads(output.read_text())
    summary = payload["configurations"]["baseline"]
    assert summary["benchmarks"] == ["thermal_virus+idle_crawl"]

"""End-to-end equivalence of the two-stage campaign path.

The campaign layer's replay optimization must be invisible in the results:
every cell satisfied by replaying a shared activity trace has to be
*bit-identical* to the coupled simulation of the same spec.  These tests
lock that from every angle — a physics-only sweep compared coupled vs
replayed, the golden fixtures re-served entirely from trace artifacts, the
DTM no-op policy's reconstructed telemetry, process-pool replay, and the
automatic coupled fallback for feedback-bearing cells.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import test_golden_metrics as golden

from repro.campaign import (
    Campaign,
    ExperimentSettings,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    run_campaign,
)
from repro.core.presets import baseline_config, bank_hopping_config


def _physics_sweep(
    base=None, variants=3, benchmarks=("gzip", "swim"), name="physics_sweep"
) -> Campaign:
    """A campaign whose configs differ only in physics-side parameters."""
    base = base or baseline_config()
    configs = [
        dataclasses.replace(
            base,
            name=f"leakage_{i}",
            power=dataclasses.replace(
                base.power, leakage_fraction_at_ambient=0.20 + 0.08 * i
            ),
        )
        for i in range(variants)
    ]
    settings = ExperimentSettings(
        benchmarks=benchmarks, uops_per_benchmark=1_500, seed=7
    )
    return Campaign(configs, settings, name=name)


def _digest_outcome(outcome) -> dict:
    return {
        f"{variant}/{benchmark}": golden._digest_result(result)
        for variant, summary in outcome.summaries.items()
        for benchmark, result in summary.results.items()
    }


# ----------------------------------------------------------------------
# Coupled == replayed
# ----------------------------------------------------------------------
def test_replayed_sweep_is_bit_identical_to_coupled():
    """Acceptance: coupled == replayed metrics for a no-feedback sweep."""
    campaign = _physics_sweep()
    coupled = run_campaign(campaign, executor=SerialExecutor(), replay=False)
    replayed = run_campaign(campaign, executor=SerialExecutor(), replay=True)

    assert coupled.cells_executed == 6 and coupled.cells_replayed == 0
    # One capture per (benchmark) timing-key group, the rest replayed.
    assert replayed.cells_executed == 2
    assert replayed.traces_captured == 2
    assert replayed.cells_replayed == 4

    problems = golden._compare(
        _digest_outcome(coupled), _digest_outcome(replayed), "sweep", reltol=0
    )
    assert not problems, "replay drifted from the coupled path:\n  " + "\n  ".join(
        problems[:20]
    )


def test_replay_with_bank_hopping_gating_is_bit_identical():
    """The per-interval gated-bank schedule travels with the trace."""
    campaign = _physics_sweep(
        base=bank_hopping_config(), variants=2, benchmarks=("gzip",), name="hop_sweep"
    )
    coupled = run_campaign(campaign, replay=False)
    replayed = run_campaign(campaign, replay=True)
    assert replayed.cells_replayed == 1
    assert not golden._compare(
        _digest_outcome(coupled), _digest_outcome(replayed), "hop", reltol=0
    )


def test_parallel_replay_matches_serial():
    """Traces cross the process boundary; results must not change."""
    campaign = _physics_sweep(variants=3, benchmarks=("gzip",))
    serial = run_campaign(campaign, executor=SerialExecutor())
    parallel = run_campaign(campaign, executor=ParallelExecutor(jobs=2))
    assert parallel.cells_replayed == serial.cells_replayed == 2
    assert not golden._compare(
        _digest_outcome(serial), _digest_outcome(parallel), "parallel", reltol=0
    )


def test_replayed_results_are_marked_in_provenance():
    outcome = run_campaign(_physics_sweep(variants=2, benchmarks=("gzip",)))
    flags = {
        variant: summary.results["gzip"].provenance.get("replayed", False)
        for variant, summary in outcome.summaries.items()
    }
    # Exactly one cell (the capture) is not marked as replayed.
    assert sorted(flags.values()) == [False, True]


# ----------------------------------------------------------------------
# Golden fixtures, served from trace artifacts
# ----------------------------------------------------------------------
def test_golden_centralized_fixture_passes_through_capture_and_replay(tmp_path):
    """Acceptance: the golden fixture is reproduced by capture + replay."""
    campaign = golden._golden_campaigns()["centralized"]
    cache = ResultCache(tmp_path / "cache")

    first = run_campaign(campaign, cache=cache)
    assert first.cells_executed == 2  # both cells captured (cache attached)
    assert cache.trace_stores == 2

    # Drop the results but keep the trace artifacts: the rerun must rebuild
    # every cell purely by replaying the physics stage.
    for path in cache._result_files():
        path.unlink()
    second = run_campaign(campaign, cache=cache)
    assert second.cells_executed == 0
    assert second.cells_replayed == 2

    digest = {
        f"{variant}/{benchmark}": golden._digest_result(result)
        for variant, summary in second.summaries.items()
        for benchmark, result in summary.results.items()
    }
    fixture = json.loads(golden._fixture_path("centralized").read_text())
    problems = golden._compare(fixture["cells"], digest, "centralized", reltol=0)
    assert not problems, (
        "replayed golden campaign drifted from the fixture:\n  "
        + "\n  ".join(problems[:20])
    )


def test_golden_thermal_aware_campaign_falls_back_to_coupled(tmp_path):
    """The distributed+biasing campaign has temperature-steered mapping; it
    must never replay — and still match its fixture via the coupled path."""
    campaign = golden._golden_campaigns()["distributed_hopping"]
    cache = ResultCache(tmp_path / "cache")
    first = run_campaign(campaign, cache=cache)
    assert first.cells_executed == 2
    assert first.traces_captured == 0
    assert cache.trace_stores == 0

    for path in cache._result_files():
        path.unlink()
    second = run_campaign(campaign, cache=cache)
    assert second.cells_replayed == 0
    assert second.cells_executed == 2

    digest = {
        f"{variant}/{benchmark}": golden._digest_result(result)
        for variant, summary in second.summaries.items()
        for benchmark, result in summary.results.items()
    }
    fixture = json.loads(golden._fixture_path("distributed_hopping").read_text())
    assert not golden._compare(fixture["cells"], digest, "distributed", reltol=0)


# ----------------------------------------------------------------------
# Trace artifacts in the cache
# ----------------------------------------------------------------------
def test_trace_artifacts_are_shared_across_campaigns(tmp_path):
    """A later sweep with *new* physics variants replays a cached trace
    without a single timing simulation."""
    cache = ResultCache(tmp_path / "cache")
    first = run_campaign(
        _physics_sweep(variants=2, benchmarks=("gzip",)), cache=cache
    )
    assert first.cells_executed == 1 and first.cells_replayed == 1

    base = baseline_config()
    fresh_variants = Campaign(
        [
            dataclasses.replace(
                base,
                name=f"package_{i}",
                thermal=dataclasses.replace(
                    base.thermal, convection_resistance_k_per_w=0.10 + 0.04 * i
                ),
            )
            for i in range(3)
        ],
        ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_500, seed=7),
        name="package_sweep",
    )
    executor = SerialExecutor()
    second = run_campaign(fresh_variants, executor=executor, cache=cache)
    assert second.cells_executed == 0
    assert executor.cells_executed == 0
    assert second.cells_replayed == 3
    assert cache.trace_hits >= 1

    # And the replayed results are exactly what a coupled run produces.
    coupled = run_campaign(fresh_variants, replay=False)
    assert not golden._compare(
        _digest_outcome(coupled), _digest_outcome(second), "cross", reltol=0
    )


def test_singleton_group_without_cache_stays_coupled():
    """With nobody to share with and nowhere to store, capture is skipped."""
    campaign = Campaign.single(
        baseline_config(),
        ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_200),
    )
    outcome = run_campaign(campaign)
    assert outcome.cells_executed == 1
    assert outcome.traces_captured == 0
    assert outcome.cells_replayed == 0


# ----------------------------------------------------------------------
# DTM interactions
# ----------------------------------------------------------------------
def test_none_policy_cells_replay_with_reconstructed_telemetry():
    base = baseline_config()
    campaign = Campaign(
        [
            dataclasses.replace(
                base,
                name=f"v{i}",
                power=dataclasses.replace(base.power, leakage_fraction_at_ambient=0.2 + 0.1 * i),
            )
            for i in range(2)
        ],
        ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_500, seed=7),
        name="none_sweep",
        dtm_policies=("none",),
    )
    coupled = run_campaign(campaign, replay=False)
    replayed = run_campaign(campaign, replay=True)
    assert replayed.cells_replayed == 1
    assert not golden._compare(
        _digest_outcome(coupled), _digest_outcome(replayed), "none", reltol=0
    )
    for summary_c, summary_r in zip(
        coupled.summaries.values(), replayed.summaries.values()
    ):
        for benchmark in summary_c.results:
            assert (
                summary_c.results[benchmark].dtm == summary_r.results[benchmark].dtm
            )


def test_feedback_policy_cells_never_replay():
    campaign = _physics_sweep(variants=2, benchmarks=("gzip",))
    with_dtm = Campaign(
        campaign.configs,
        campaign.settings,
        name="dtm_sweep",
        dtm_policies=("fetch_throttle:trigger=60,duty=0.25",),
    )
    outcome = run_campaign(with_dtm)
    assert outcome.cells_replayed == 0
    assert outcome.cells_executed == 2


def test_legacy_run_cells_only_executor_still_works():
    """An Executor subclass predating run_tasks gets the coupled path."""
    from repro.campaign import execute_cell

    class LegacyExecutor(SerialExecutor):
        run_tasks = None  # simulate a subclass that never implemented it

        def run_cells(self, cells):
            results = []
            for spec in cells:
                results.append(execute_cell(spec))
                self.cells_executed += 1
            return results

    # Guard the guard: the detection must treat this class as legacy.
    from repro.campaign.executors import Executor

    LegacyExecutor.run_tasks = Executor.run_tasks

    campaign = _physics_sweep(variants=2, benchmarks=("gzip",))
    legacy = run_campaign(campaign, executor=LegacyExecutor())
    assert legacy.cells_executed == 2
    assert legacy.cells_replayed == 0
    modern = run_campaign(campaign, executor=SerialExecutor())
    assert not golden._compare(
        _digest_outcome(legacy), _digest_outcome(modern), "legacy", reltol=0
    )


def test_mixed_policy_axis_splits_between_replay_and_coupled():
    campaign = _physics_sweep(variants=2, benchmarks=("gzip",))
    mixed = Campaign(
        campaign.configs,
        campaign.settings,
        name="mixed",
        dtm_policies=("none", "clock_gate:trigger=60"),
    )
    outcome = run_campaign(mixed)
    # 2 configs x 2 policies: the two clock_gate cells run coupled, the two
    # none cells share one captured trace.
    assert outcome.cells_executed == 3
    assert outcome.cells_replayed == 1

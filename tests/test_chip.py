"""Tests of the chip multiprocessor layer (:mod:`repro.chip`).

The two contractual equivalences:

* a **1-core chip** is bit-identical to the single-core engine — the same
  runs the golden fixtures pin, so the chip layer adds zero numerical drift;
* a **multi-core coupled** run equals its **per-core-trace replay** exactly,
  for a heterogeneous mix with ``core_migration`` disabled — and the
  per-core traces are byte-identical to plain single-core captures.
"""

import numpy as np
import pytest

from repro.chip import (
    ChipEngine,
    build_chip_physics,
    chip_block_groups,
    make_chip_policy,
    replay_chip,
)
from repro.chip.policies import ChipControls, ChipObservation
from repro.core.presets import baseline_config, bank_hopping_config
from repro.sim.engine import SimulationEngine
from repro.workloads.generator import TraceGenerator

INTERVAL = 400
HETEROGENEOUS = ("thermal_virus", "idle_crawl")


def _uops(benchmark, n=2500, seed=5):
    return TraceGenerator(benchmark, seed=seed).generate(n).uops


def _chip(config, benchmarks, **kwargs):
    sources = [_uops(b) for b in benchmarks]
    return ChipEngine(config, sources, benchmarks, interval_cycles=INTERVAL, **kwargs)


def _assert_results_identical(a, b, rename=lambda name: name):
    __tracebackhide__ = True
    assert len(a.intervals) == len(b.intervals)
    for ra, rb in zip(a.intervals, b.intervals):
        assert ra.cycle == rb.cycle
        assert ra.seconds == rb.seconds
        for name in a.block_names:
            other = rename(name)
            assert ra.temperature[name] == rb.temperature[other]
            assert ra.dynamic_power[name] == rb.dynamic_power[other]
            assert ra.leakage_power[name] == rb.leakage_power[other]


# ----------------------------------------------------------------------
# 1-core chip == single-core engine, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config_factory", [baseline_config, bank_hopping_config])
def test_one_core_chip_bit_identical_to_single_core(config_factory):
    config = config_factory()
    single = SimulationEngine(
        config, _uops("gzip"), "gzip", interval_cycles=INTERVAL
    ).run()
    chip = _chip(config, ["gzip"]).run()
    _assert_results_identical(single, chip, rename=lambda name: f"core0.{name}")
    assert chip.stats.to_payload() == single.stats.to_payload()
    assert chip.chip["cores"] == 1
    assert chip.chip["aggregate"]["chip_ipc"] == single.stats.ipc
    # The composite warm-up equals the single-core one, renamed.
    assert chip.warmup_temperature == {
        f"core0.{name}": value for name, value in single.warmup_temperature.items()
    }


# ----------------------------------------------------------------------
# Multi-core coupled == per-core-trace replay, exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config_factory", [baseline_config, bank_hopping_config])
def test_two_core_coupled_equals_trace_replay_exactly(config_factory):
    """The acceptance equivalence: heterogeneous 2-core mix, no migration."""
    config = config_factory()
    coupled, traces = _chip(config, list(HETEROGENEOUS)).run_with_traces()
    replayed = replay_chip(config, traces, interval_cycles=INTERVAL)
    _assert_results_identical(coupled, replayed)
    assert coupled.chip == replayed.chip
    assert coupled.stats.to_payload() == replayed.stats.to_payload()
    assert coupled.warmup_temperature == replayed.warmup_temperature
    assert replayed.provenance["replayed"] is True


def test_chip_traces_byte_identical_to_single_core_captures():
    """A chip thread's trace IS the single-core capture of the same cell."""
    config = baseline_config()
    _, traces = _chip(config, list(HETEROGENEOUS)).run_with_traces()
    for benchmark, trace in zip(HETEROGENEOUS, traces):
        _, single_trace = SimulationEngine(
            config, _uops(benchmark), benchmark, interval_cycles=INTERVAL
        ).run_with_trace()
        assert single_trace.to_json() == trace.to_json()


def test_replay_with_none_policy_matches_coupled_none_policy():
    config = baseline_config()
    coupled = _chip(config, list(HETEROGENEOUS), chip_policy="none").run()
    _, traces = _chip(config, list(HETEROGENEOUS)).run_with_traces()
    replayed = replay_chip(config, traces, interval_cycles=INTERVAL, chip_policy="none")
    _assert_results_identical(coupled, replayed)
    assert coupled.chip == replayed.chip


# ----------------------------------------------------------------------
# Composite-die physics
# ----------------------------------------------------------------------
def test_composite_network_has_cross_core_lateral_coupling():
    config = baseline_config()
    physics, core_index, blocks_per_core = build_chip_physics(config, 2, INTERVAL)
    g = physics.network.conductance
    cross = g[:blocks_per_core, blocks_per_core : 2 * blocks_per_core]
    # Abutting dies share edges: some core0 <-> core1 conductances exist.
    assert (cross < 0).any()
    # And the composite die area doubles, so the package sees a bigger die.
    single = build_chip_physics(config, 1, INTERVAL)[0]
    assert physics.floorplan.die_area == pytest.approx(2 * single.floorplan.die_area)


def test_idle_neighbour_heats_through_the_package():
    """A hot core warms an idle one well above ambient (shared-die coupling)."""
    config = baseline_config()
    result = _chip(config, ["thermal_virus"], cores=2).run()
    idle_peak = result.chip["per_core"]["core1"]["peak_celsius"]
    busy_peak = result.chip["per_core"]["core0"]["peak_celsius"]
    assert busy_peak > idle_peak
    assert idle_peak > config.thermal.ambient_celsius + 10.0


def test_chip_block_groups_cover_every_core():
    config = baseline_config()
    groups = chip_block_groups(config, 2)
    assert "core0" in groups and "core1" in groups
    assert len(groups["Processor"]) == len(groups["core0"]) + len(groups["core1"])
    assert all(name.startswith("core1.") for name in groups["core1"])


# ----------------------------------------------------------------------
# Chip-level DTM
# ----------------------------------------------------------------------
def test_core_migration_moves_hot_thread_to_idle_core():
    config = baseline_config()
    result = _chip(
        config,
        ["thermal_virus"],
        cores=2,
        chip_policy="core_migration:trigger=60,margin=0.5,cooldown=1",
    ).run()
    assert result.chip["migrations"] >= 1
    first = result.chip["migration_log"][0]
    assert first["thread"] == 0 and first["from"] == 0 and first["to"] == 1
    assert result.chip["threads"][0]["final_core"] in (0, 1)
    assert result.chip["policy"].startswith("core_migration")


def test_core_migration_needs_an_idle_core():
    config = baseline_config()
    result = _chip(
        config,
        list(HETEROGENEOUS),
        cores=2,
        chip_policy="core_migration:trigger=60,margin=0,cooldown=0",
    ).run()
    assert result.chip["migrations"] == 0


def test_chip_dvfs_engages_per_core():
    config = baseline_config()
    managed = _chip(
        config, list(HETEROGENEOUS), chip_policy="chip_dvfs:target=70"
    ).run()
    unmanaged = _chip(config, list(HETEROGENEOUS)).run()
    residency = managed.chip["dvfs_residency"]
    assert any(ratio != "1" for ratio in residency)
    assert (
        managed.chip["aggregate"]["peak_celsius"]
        < unmanaged.chip["aggregate"]["peak_celsius"]
    )


def test_per_core_policy_rides_along():
    config = baseline_config()
    result = _chip(
        config,
        list(HETEROGENEOUS),
        core_policies=["fetch_throttle:trigger=60", None],
    ).run()
    dtm = result.chip["threads"][0]["dtm"]
    assert dtm["throttle_ratio"] > 0.0
    assert "dtm" not in result.chip["threads"][1]


def test_feedback_policies_refuse_capture_and_replay():
    config = baseline_config()
    engine = _chip(config, ["thermal_virus"], cores=2, chip_policy="core_migration")
    with pytest.raises(ValueError, match="actuates on temperatures"):
        engine.run_with_traces()
    _, traces = _chip(config, ["thermal_virus"], cores=2).run_with_traces()
    with pytest.raises(ValueError, match="coupled"):
        replay_chip(config, traces, cores=2, chip_policy="core_migration")


def test_chip_controls_clamp_requests():
    controls = ChipControls(2)
    assert controls.request_core_step(0, 99) == len(controls.table) - 1
    assert controls.request_core_step(0, -5) == 0
    with pytest.raises(ValueError, match="out of range"):
        controls.request_core_step(2, 1)
    with pytest.raises(ValueError, match="out of range"):
        controls.request_core_step(-1, 1)
    controls.begin_interval(migration_allowed=False)
    assert not controls.request_migration(0, 1)
    controls.begin_interval()
    assert not controls.request_migration(0, 0)
    assert not controls.request_migration(0, 7)
    assert controls.request_migration(0, 1)
    # One migration per interval.
    assert not controls.request_migration(1, 0)


def test_chip_observation_picks_hottest_busy_and_coolest_idle():
    obs = ChipObservation(
        3,
        np.array([80.0, 95.0, 60.0, 70.0]),
        np.array([True, True, False, False]),
    )
    assert obs.hottest_busy_core() == 1
    assert obs.coolest_idle_core() == 2


def test_make_chip_policy_errors_are_one_liners():
    with pytest.raises(ValueError, match="unknown chip DTM policy"):
        make_chip_policy("nope")
    with pytest.raises(ValueError, match="malformed chip DTM policy parameter"):
        make_chip_policy("chip_dvfs:target")
    with pytest.raises(ValueError, match="invalid parameters"):
        make_chip_policy("core_migration:bogus=1")


# ----------------------------------------------------------------------
# Engine validation
# ----------------------------------------------------------------------
def test_chip_engine_rejects_bad_shapes():
    config = baseline_config()
    with pytest.raises(ValueError, match="do not fit"):
        ChipEngine(
            config,
            [_uops("gzip"), _uops("swim")],
            ["gzip", "swim"],
            cores=1,
            interval_cycles=INTERVAL,
        )
    with pytest.raises(ValueError, match="at least one thread"):
        ChipEngine(config, [], [], interval_cycles=INTERVAL)
    with pytest.raises(ValueError, match="uop sources"):
        ChipEngine(config, [_uops("gzip")], ["gzip", "swim"], interval_cycles=INTERVAL)


def test_replay_rejects_foreign_traces():
    config = baseline_config()
    _, traces = _chip(config, ["gzip"]).run_with_traces()
    with pytest.raises(ValueError, match="interval_cycles"):
        replay_chip(config, traces, interval_cycles=INTERVAL * 2)
    with pytest.raises(ValueError, match="do not fit"):
        replay_chip(config, list(traces) * 3, cores=2, interval_cycles=INTERVAL)

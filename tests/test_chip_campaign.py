"""Campaign integration of the chip layer: axes, trace reuse, serialization."""

import dataclasses

import pytest

from repro.campaign import (
    Campaign,
    ExperimentSettings,
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    run_campaign,
)
from repro.chip import ChipRunSpec
from repro.core.presets import baseline_config
from repro.sim.serialization import result_from_dict, result_to_dict


def _settings(**overrides):
    defaults = dict(
        benchmarks=("gzip",),
        uops_per_benchmark=1500,
        seed=3,
        honor_relative_length=False,
    )
    defaults.update(overrides)
    return ExperimentSettings(**defaults)


MIX = "thermal_virus+idle_crawl"


def _chip_campaign(configs=None, **kwargs):
    configs = configs or (baseline_config(),)
    defaults = dict(cores=2, per_core_scenarios=(MIX,))
    defaults.update(kwargs)
    return Campaign(configs, _settings(), name="chip", **defaults)


# ----------------------------------------------------------------------
# Campaign axes
# ----------------------------------------------------------------------
def test_cores_axis_defaults_to_homogeneous_mixes():
    campaign = Campaign(
        (baseline_config(),), _settings(benchmarks=("gzip", "swim")), cores=2
    )
    assert campaign.is_chip
    assert campaign.mixes() == (("gzip", "gzip"), ("swim", "swim"))
    assert len(campaign) == 2
    cells = campaign.cells()
    assert all(isinstance(cell, ChipRunSpec) for cell in cells)
    assert cells[0].benchmark == "gzip+gzip"


def test_single_core_campaign_is_unchanged():
    campaign = Campaign((baseline_config(),), _settings())
    assert not campaign.is_chip
    assert all(isinstance(cell, RunSpec) for cell in campaign.cells())


def test_mix_validation():
    with pytest.raises(ValueError, match="has 3 threads"):
        Campaign(
            (baseline_config(),),
            _settings(),
            cores=2,
            per_core_scenarios=("gzip+swim+mcf",),
        )
    with pytest.raises(KeyError, match="nosuch"):
        Campaign(
            (baseline_config(),),
            _settings(),
            cores=2,
            per_core_scenarios=("gzip+nosuch",),
        )
    with pytest.raises(ValueError, match="unique"):
        Campaign(
            (baseline_config(),),
            _settings(),
            cores=2,
            per_core_scenarios=("gzip+swim", ("gzip", "swim")),
        )
    with pytest.raises(ValueError, match="cores"):
        Campaign((baseline_config(),), _settings(), cores=0, per_core_scenarios=("gzip",))


def test_chip_mode_validates_chip_policies():
    with pytest.raises(ValueError, match="unknown chip DTM policy"):
        _chip_campaign(dtm_policies=("fetch_throttle",))
    # ...which is a perfectly good *single-core* policy.
    Campaign((baseline_config(),), _settings(), dtm_policies=("fetch_throttle",))


def test_chip_cache_keys_do_not_collide_with_single_core_cells():
    campaign = Campaign(
        (baseline_config(),), _settings(), cores=1, per_core_scenarios=("gzip",)
    )
    chip_cell = campaign.cells()[0]
    single_cell = Campaign((baseline_config(),), _settings()).cells()[0]
    assert chip_cell.core_specs()[0].cache_key() == single_cell.cache_key()
    assert chip_cell.cache_key() != single_cell.cache_key()


# ----------------------------------------------------------------------
# Execution: capture once, replay everywhere
# ----------------------------------------------------------------------
def test_chip_campaign_runs_and_aggregates(tmp_path):
    cache = ResultCache(tmp_path)
    outcome = run_campaign(_chip_campaign(), cache=cache)
    # Two threads -> two single-core captures, then one chip replay.
    assert outcome.cells_executed == 2
    assert outcome.traces_captured == 2
    assert outcome.cells_replayed == 1
    result = outcome.summaries["baseline"].results[MIX]
    assert result.chip["cores"] == 2
    assert result.provenance["replayed"] is True
    assert "2-core chips" in outcome.describe()

    # A repeated run is served entirely from the cache.
    again = run_campaign(_chip_campaign(), cache=cache)
    assert again.cache_hits == 1
    assert again.cells_executed == 0 and again.cells_replayed == 0


def test_physics_sweep_reuses_cached_single_core_traces(tmp_path):
    """cells_executed stays flat as the physics grid grows."""
    cache = ResultCache(tmp_path)
    base = baseline_config()

    def physics_variant(i):
        return dataclasses.replace(
            base,
            name=f"phys_{i}",
            power=dataclasses.replace(
                base.power, leakage_fraction_at_ambient=0.20 + 0.02 * i
            ),
        )

    small = _chip_campaign(configs=[physics_variant(0)])
    outcome = run_campaign(small, cache=cache)
    assert outcome.cells_executed == 2  # the two per-thread captures

    big = _chip_campaign(configs=[physics_variant(i) for i in range(4)])
    grown = run_campaign(big, cache=cache)
    # 4x the physics cells, zero new timing simulations (phys_0's whole chip
    # cell is even a result-cache hit from the first campaign).
    assert grown.cells_executed == 0
    assert grown.cache_hits == 1
    assert grown.cells_replayed == 3
    assert grown.traces_captured == 0


def test_chip_campaign_replay_matches_coupled(tmp_path):
    coupled = run_campaign(_chip_campaign(), replay=False)
    replayed = run_campaign(_chip_campaign(), cache=ResultCache(tmp_path))
    a = coupled.summaries["baseline"].results[MIX]
    b = replayed.summaries["baseline"].results[MIX]
    assert coupled.cells_replayed == 0 and replayed.cells_replayed == 1
    for ra, rb in zip(a.intervals, b.intervals):
        assert ra.temperature == rb.temperature
        assert ra.dynamic_power == rb.dynamic_power
    assert a.chip == b.chip


def test_feedback_chip_policy_falls_back_to_coupled():
    outcome = run_campaign(
        _chip_campaign(dtm_policies=("none", "core_migration:trigger=60")),
        executor=ParallelExecutor(jobs=2),
    )
    assert outcome.cells_replayed == 1  # the "none" variant
    assert outcome.cells_executed == 3  # 2 captures + 1 coupled migration cell
    managed = outcome.summaries["baseline@core_migration:trigger=60"].results[MIX]
    assert "replayed" not in managed.provenance


def test_chip_campaign_requires_run_tasks_executor():
    from repro.campaign.executors import Executor, execute_cell

    class Legacy(Executor):
        def run_cells(self, cells):
            results = [execute_cell(spec) for spec in cells]
            self.cells_executed += len(cells)
            return results

    with pytest.raises(ValueError, match="run_tasks"):
        run_campaign(_chip_campaign(), executor=Legacy())


# ----------------------------------------------------------------------
# Serialization (schema v4)
# ----------------------------------------------------------------------
def test_schema_v4_round_trips_chip_telemetry():
    outcome = run_campaign(_chip_campaign())
    result = outcome.summaries["baseline"].results[MIX]
    data = result_to_dict(result)
    assert data["schema_version"] == 4
    restored = result_from_dict(data)
    assert restored.chip == result.chip
    assert restored.temperature_metrics("core1") == pytest.approx(
        result.temperature_metrics("core1")
    )
    # A pre-chip (schema v3) file loads with empty chip telemetry.
    data["schema_version"] = 3
    del data["chip"]
    assert result_from_dict(data).chip == {}

"""Shared-LLC contention: spec grammar, coupling effect, cache-key hygiene.

The contention model (:mod:`repro.chip.contention`) must satisfy three
regression contracts at once:

* **Disabled is invisible** — with no contention (or the ``"none"``
  spelling), every payload, cache key and trace is byte-identical to the
  pre-contention chip layer;
* **Enabled couples** — a cache-thrashing co-runner measurably degrades a
  neighbour's IPC through the shared memory buses, deterministically under
  a fixed seed;
* **Enabled is honest about replay** — contended cells report themselves
  non-replayable and run coupled on the reference timing path.
"""

from __future__ import annotations

import pytest

from repro.campaign import Campaign, ExperimentSettings, SerialExecutor, run_campaign
from repro.chip import (
    ChipEngine,
    ChipRunSpec,
    ContentionConfig,
    SharedLLCContention,
    make_contention,
)
from repro.core.presets import baseline_config
from repro.sim.serialization import result_to_dict
from repro.workloads.generator import TraceGenerator

#: A mix with a heavy UL2 miss stream next to a memory-sensitive neighbour.
MIX = ("cache_thrash", "memory_bound")
#: Bus occupancy high enough that the mix's miss density saturates the two
#: memory buses (the defaults model ample bandwidth — no queueing at these
#: trace lengths).
CONTENTION_SPEC = "shared_llc:service=256,max_extra=400"


def _engine(contention, uops=2000, interval=8_000, benchmarks=MIX, **kwargs):
    sources = [
        TraceGenerator(b, seed=11).generate(uops).uops for b in benchmarks
    ]
    return ChipEngine(
        baseline_config(),
        sources,
        benchmarks,
        cores=len(benchmarks),
        interval_cycles=interval,
        # Cold UL2: the short traces' footprints otherwise fit the 2 MB
        # array after the functional warm-up and never miss.
        prewarm_caches=False,
        contention=contention,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
def test_disabled_spellings_parse_to_none():
    assert make_contention(None) is None
    assert make_contention("") is None
    assert make_contention("none") is None
    assert make_contention("  none  ") is None


def test_spec_round_trip():
    config = make_contention("shared_llc:service=32,max_extra=300")
    assert config == ContentionConfig(service_cycles=32, max_extra_latency=300)
    assert config.spec == "shared_llc:service=32,max_extra=300"
    assert make_contention("shared_llc").spec == "shared_llc"


def test_malformed_specs_rejected():
    with pytest.raises(ValueError, match="unknown contention model"):
        make_contention("token_bucket")
    with pytest.raises(ValueError, match="unknown contention parameter"):
        make_contention("shared_llc:buses=3")
    with pytest.raises(ValueError, match="needs an integer"):
        make_contention("shared_llc:service=fast")
    with pytest.raises(ValueError, match="malformed"):
        make_contention("shared_llc:service")
    with pytest.raises(ValueError, match="service_cycles"):
        ContentionConfig(service_cycles=0)


def test_leave_one_out_is_zero_for_single_thread():
    model = SharedLLCContention(ContentionConfig(), baseline_config())
    assert model.extra_latencies([5_000], 10_000) == [0]
    # And zero whenever no co-runner missed, however many threads.
    assert model.extra_latencies([4_000, 0], 10_000)[0] == 0


# ----------------------------------------------------------------------
# Cache-key hygiene: disabled contention is key-invisible
# ----------------------------------------------------------------------
def _spec(**kwargs) -> ChipRunSpec:
    return ChipRunSpec(
        config=baseline_config(),
        cores=2,
        benchmarks=MIX,
        trace_uops=(1000, 1000),
        interval_cycles=10_000,
        seed=3,
        **kwargs,
    )


def test_legacy_key_material_gains_no_new_keys():
    material = _spec().key_material()
    assert set(material) == {
        "chip",
        "cores",
        "config",
        "benchmarks",
        "trace_uops",
        "interval_cycles",
        "seed",
    }


def test_none_spelling_mints_the_same_key():
    assert _spec(contention="none").cache_key() == _spec().cache_key()
    assert _spec(contention="none").contention is None


def test_enabled_contention_mints_a_distinct_key():
    assert _spec(contention="shared_llc").cache_key() != _spec().cache_key()


def test_contended_spec_is_not_replayable():
    spec = _spec(contention="shared_llc")
    assert not spec.replayable
    assert "contention" in spec.replay_reason()
    assert _spec().replayable


def test_malformed_spec_fails_at_construction():
    with pytest.raises(ValueError, match="unknown contention model"):
        _spec(contention="bogus")


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------
def test_disabled_contention_is_byte_identical():
    """contention=None and contention="none" produce identical payloads,
    with no contention telemetry key at all."""
    baseline = result_to_dict(_engine(None).run())
    spelled = result_to_dict(_engine("none").run())
    assert baseline == spelled
    assert "contention" not in baseline["chip"]


def test_single_thread_contention_changes_nothing_but_telemetry():
    alone = ("cache_thrash",)
    off = _engine(None, benchmarks=alone).run()
    on = _engine("shared_llc", benchmarks=alone).run()
    telemetry = on.chip.pop("contention")
    assert telemetry["mean_extra_latency"] == 0.0
    assert telemetry["peak_extra_latency"] == 0
    assert result_to_dict(off) == result_to_dict(on)


def test_contention_degrades_corunner_ipc_deterministically():
    off = _engine(None).run()
    on_a = _engine(CONTENTION_SPEC).run()
    on_b = _engine(CONTENTION_SPEC).run()

    ipc_off = [t["ipc"] for t in off.chip["threads"]]
    ipc_on = [t["ipc"] for t in on_a.chip["threads"]]
    # Both threads suffer behind each other's miss traffic; the thrash
    # thread has the densest stream so its neighbour must degrade too.
    assert all(on < offv for on, offv in zip(ipc_on, ipc_off)), (ipc_on, ipc_off)

    telemetry = on_a.chip["contention"]
    assert telemetry["model"] == "shared_llc"
    assert telemetry["total_ul2_misses"] > 0
    assert telemetry["peak_extra_latency"] > 0
    assert telemetry["max_extra_latency"] == 400

    # Fixed seed, fixed spec: bit-for-bit reproducible.
    assert result_to_dict(on_a) == result_to_dict(on_b)


def test_contention_forces_reference_timing():
    engine = _engine("shared_llc")
    assert engine.resolved_timing_mode == "reference"
    assert "contention" in engine.replay_safe_reason
    with pytest.raises(ValueError, match="timing_mode='fast'"):
        _engine("shared_llc", timing_mode="fast")


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
def _campaign(contention=None) -> Campaign:
    settings = ExperimentSettings(
        benchmarks=("gzip",),
        uops_per_benchmark=1200,
        seed=3,
        honor_relative_length=False,
    )
    return Campaign(
        (baseline_config(),),
        settings,
        name="contention",
        cores=2,
        per_core_scenarios=("+".join(MIX),),
        contention=contention,
    )


def test_campaign_validates_contention():
    with pytest.raises(ValueError, match="unknown contention model"):
        _campaign("bogus")
    settings = ExperimentSettings(
        benchmarks=("gzip",), uops_per_benchmark=500, seed=1
    )
    with pytest.raises(ValueError, match="single-core"):
        Campaign((baseline_config(),), settings, contention="shared_llc")
    # The disabled spelling is fine anywhere, and normalizes away.
    assert (
        Campaign((baseline_config(),), settings, contention="none").contention
        is None
    )


def test_contended_campaign_runs_coupled():
    executor = SerialExecutor()
    outcome = run_campaign(_campaign("shared_llc"), executor=executor)
    # Contended cells cannot replay from cached single-core traces: every
    # cell is a coupled simulation, none are replays.
    assert executor.cells_executed == 1
    result = outcome.summaries["baseline"].results["+".join(MIX)]
    assert result.chip["contention"]["model"] == "shared_llc"
    assert result.provenance["contention"] == "shared_llc"
    assert "replayed" not in result.provenance


def test_campaign_cells_carry_the_contention_axis():
    cells = _campaign("shared_llc").cells()
    assert all(cell.contention == "shared_llc" for cell in cells)
    assert all(not cell.replayable for cell in cells)
    plain = _campaign().cells()
    assert cells[0].cache_key() != plain[0].cache_key()

"""Unit tests for the backend cluster container."""

from repro.backend.cluster import Cluster
from repro.isa.microops import UopClass
from repro.sim.config import BackendConfig, MemoryConfig


def _cluster(cluster_id=0):
    return Cluster(cluster_id, BackendConfig(), MemoryConfig())


def test_cluster_builds_table1_resources():
    cluster = _cluster()
    assert cluster.int_rf.num_registers == 160
    assert cluster.fp_rf.num_registers == 160
    assert cluster.int_queue.capacity == 40
    assert cluster.fp_queue.capacity == 40
    assert cluster.copy_queue.capacity == 40
    assert cluster.mem_queue.capacity == 96
    assert cluster.mob.capacity == 96
    assert cluster.dcache.capacity_bytes == 16 * 1024


def test_register_file_selection_by_class():
    cluster = _cluster()
    assert cluster.register_file_for(is_fp=False) is cluster.int_rf
    assert cluster.register_file_for(is_fp=True) is cluster.fp_rf


def test_queue_selection_by_uop_class():
    cluster = _cluster()
    assert cluster.queue_for(UopClass.IALU) is cluster.int_queue
    assert cluster.queue_for(UopClass.IMUL) is cluster.int_queue
    assert cluster.queue_for(UopClass.BRANCH) is cluster.int_queue
    assert cluster.queue_for(UopClass.FPADD) is cluster.fp_queue
    assert cluster.queue_for(UopClass.FPDIV) is cluster.fp_queue
    assert cluster.queue_for(UopClass.COPY) is cluster.copy_queue
    assert cluster.queue_for(UopClass.LOAD) is cluster.mem_queue
    assert cluster.queue_for(UopClass.STORE) is cluster.mem_queue


def test_prescheduler_capacity_limits_dispatch_pipe():
    cluster = _cluster()
    limit = cluster.config.prescheduler_entries * 4
    for i in range(limit):
        assert cluster.prescheduler_has_space()
        cluster.dispatch_pipe.append((i, None))
    assert not cluster.prescheduler_has_space()


def test_occupancy_and_load_start_at_zero():
    cluster = _cluster(2)
    assert cluster.occupancy() == 0
    assert cluster.load() == 0
    assert "Cluster(2" in repr(cluster)

"""Unit tests for the centralized and distributed commit units."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distributed_commit import DistributedCommitUnit, PartialReorderBuffer
from repro.frontend.commit import CentralizedCommitUnit
from repro.isa.microops import MicroOp, UopClass
from repro.sim.uop import DynamicUop, UopState


def _uop(seq, frontend=0, completed_at=None):
    dynamic = DynamicUop(MicroOp(pc=4 * seq, uop_class=UopClass.IALU), seq)
    dynamic.frontend_id = frontend
    if completed_at is not None:
        dynamic.state = UopState.COMPLETED
        dynamic.complete_cycle = completed_at
    return dynamic


# ----------------------------------------------------------------------
# Centralized commit
# ----------------------------------------------------------------------
def test_centralized_commit_is_in_order_and_width_limited():
    unit = CentralizedCommitUnit(rob_entries=8, commit_width=2)
    uops = [_uop(i, completed_at=0) for i in range(4)]
    for uop in uops:
        unit.allocate(uop)
    committed = unit.commit(cycle=5)
    assert [u.seq for u in committed] == [0, 1]
    assert [u.seq for u in unit.commit(cycle=5)] == [2, 3]
    assert unit.is_empty()


def test_centralized_commit_stops_at_uncompleted_head():
    unit = CentralizedCommitUnit(rob_entries=8, commit_width=4)
    head = _uop(0)  # not completed
    tail = _uop(1, completed_at=0)
    unit.allocate(head)
    unit.allocate(tail)
    assert unit.commit(cycle=10) == []
    head.state = UopState.COMPLETED
    head.complete_cycle = 11
    assert unit.commit(cycle=10) == []          # completes next cycle
    assert len(unit.commit(cycle=11)) == 2


def test_centralized_rob_capacity():
    unit = CentralizedCommitUnit(rob_entries=2, commit_width=4)
    unit.allocate(_uop(0))
    unit.allocate(_uop(1))
    assert not unit.can_allocate(0)
    with pytest.raises(RuntimeError):
        unit.allocate(_uop(2))


# ----------------------------------------------------------------------
# Distributed commit (the paper's R/L walk)
# ----------------------------------------------------------------------
def test_partial_rob_capacity_and_order():
    partition = PartialReorderBuffer(0, capacity=2)
    a, b = _uop(0), _uop(1)
    partition.allocate(a)
    partition.allocate(b)
    assert partition.is_full
    with pytest.raises(RuntimeError):
        partition.allocate(_uop(2))
    assert partition.head().uop is a
    assert [entry.uop.seq for entry in partition.entries()] == [0, 1]


def test_distributed_commit_follows_program_order_across_partitions():
    unit = DistributedCommitUnit(2, rob_entries_per_frontend=8, commit_width=8,
                                 extra_commit_latency=0)
    # Program order alternates partitions: 0->F0, 1->F1, 2->F1, 3->F0.
    order = [(0, 0), (1, 1), (2, 1), (3, 0)]
    uops = []
    for seq, frontend in order:
        uop = _uop(seq, frontend=frontend, completed_at=0)
        uops.append(uop)
        unit.allocate(uop)
    committed = unit.commit(cycle=1)
    assert [u.seq for u in committed] == [0, 1, 2, 3]


def test_distributed_commit_respects_commit_width():
    unit = DistributedCommitUnit(2, 8, commit_width=3, extra_commit_latency=0)
    for seq in range(6):
        unit.allocate(_uop(seq, frontend=seq % 2, completed_at=0))
    assert [u.seq for u in unit.commit(cycle=1)] == [0, 1, 2]
    assert [u.seq for u in unit.commit(cycle=1)] == [3, 4, 5]


def test_distributed_commit_stops_at_not_ready_entry():
    unit = DistributedCommitUnit(2, 8, commit_width=8, extra_commit_latency=0)
    ready = _uop(0, frontend=0, completed_at=0)
    not_ready = _uop(1, frontend=1)
    after = _uop(2, frontend=0, completed_at=0)
    for uop in (ready, not_ready, after):
        unit.allocate(uop)
    assert [u.seq for u in unit.commit(cycle=5)] == [0]
    # The younger ready instruction cannot bypass the unready one.
    assert unit.commit(cycle=5) == []
    assert unit.head_frontend == 1


def test_extra_commit_latency_delays_commit_by_one_cycle():
    unit = DistributedCommitUnit(2, 8, commit_width=4, extra_commit_latency=1)
    unit.allocate(_uop(0, frontend=0, completed_at=10))
    assert unit.commit(cycle=10) == []
    assert len(unit.commit(cycle=11)) == 1


def test_distributed_commit_recovers_after_draining_completely():
    unit = DistributedCommitUnit(2, 8, commit_width=8, extra_commit_latency=0)
    unit.allocate(_uop(0, frontend=0, completed_at=0))
    assert len(unit.commit(cycle=1)) == 1
    assert unit.occupancy() == 0
    # New instructions allocated to the *other* partition still commit.
    unit.allocate(_uop(1, frontend=1, completed_at=2))
    assert len(unit.commit(cycle=3)) == 1


def test_distributed_commit_requires_two_partitions():
    with pytest.raises(ValueError):
        DistributedCommitUnit(1, 8, 4)


def test_occupancy_per_partition():
    unit = DistributedCommitUnit(2, 8, 4)
    unit.allocate(_uop(0, frontend=0))
    unit.allocate(_uop(1, frontend=1))
    unit.allocate(_uop(2, frontend=1))
    assert unit.occupancy_per_partition() == [1, 2]
    assert unit.occupancy() == 3


@settings(max_examples=40, deadline=None)
@given(assignment=st.lists(st.integers(0, 1), min_size=1, max_size=40))
def test_distributed_commit_preserves_program_order_property(assignment):
    """Property: whatever the partition assignment, commits follow program order."""
    unit = DistributedCommitUnit(2, rob_entries_per_frontend=64, commit_width=4,
                                 extra_commit_latency=0)
    for seq, frontend in enumerate(assignment):
        unit.allocate(_uop(seq, frontend=frontend, completed_at=0))
    committed = []
    for cycle in range(1, len(assignment) + 2):
        committed.extend(u.seq for u in unit.commit(cycle))
    assert committed == list(range(len(assignment)))

"""Unit tests for the fluent ConfigBuilder and interval scaling."""

from dataclasses import replace

import pytest

from repro.campaign.builder import (
    UNSCALED_INTERVAL_THRESHOLD,
    ConfigBuilder,
    scale_paper_intervals,
)
from repro.core.presets import (
    FrontendOrganization,
    address_biasing_config,
    bank_hopping_biasing_config,
    bank_hopping_config,
    baseline_config,
    blank_silicon_config,
    config_for,
    distributed_frontend_config,
    distributed_rename_commit_config,
)
from repro.sim.config import ProcessorConfig, SteeringPolicy


def _manual_preset(organization: FrontendOrganization) -> ProcessorConfig:
    """Each preset rebuilt with raw nested ``dataclasses.replace`` calls."""
    config = ProcessorConfig.baseline()

    def with_tc(config, **changes):
        tc = replace(config.frontend.trace_cache, **changes)
        return replace(config, frontend=replace(config.frontend, trace_cache=tc))

    if organization is FrontendOrganization.BASELINE:
        return config
    if organization is FrontendOrganization.DISTRIBUTED_RENAME_COMMIT:
        config = replace(config, frontend=replace(config.frontend, num_frontends=2))
    elif organization is FrontendOrganization.ADDRESS_BIASING:
        config = with_tc(config, thermal_aware_mapping=True)
    elif organization is FrontendOrganization.BLANK_SILICON:
        config = with_tc(config, physical_banks=3, blank_silicon=True)
    elif organization is FrontendOrganization.BANK_HOPPING:
        config = with_tc(config, physical_banks=3, bank_hopping=True)
    elif organization is FrontendOrganization.BANK_HOPPING_BIASING:
        config = with_tc(
            config, physical_banks=3, bank_hopping=True, thermal_aware_mapping=True
        )
    elif organization is FrontendOrganization.DISTRIBUTED_FRONTEND:
        config = replace(config, frontend=replace(config.frontend, num_frontends=2))
        config = with_tc(
            config, physical_banks=3, bank_hopping=True, thermal_aware_mapping=True
        )
    return replace(config, name=organization.value)


def test_builder_reproduces_every_preset_exactly():
    """Acceptance: ConfigBuilder output equals each core/presets.py preset."""
    for organization in FrontendOrganization:
        assert config_for(organization) == _manual_preset(organization), organization


def test_builder_is_immutable_and_forkable():
    base = ConfigBuilder.baseline()
    hopping = base.bank_hopping()
    biased = base.biased_mapping()
    # Deriving from ``base`` twice must not leak changes across forks.
    assert base.build() == baseline_config()
    assert hopping.build().frontend.trace_cache.bank_hopping
    assert not hopping.build().frontend.trace_cache.thermal_aware_mapping
    assert biased.build().frontend.trace_cache.thermal_aware_mapping
    assert not biased.build().frontend.trace_cache.bank_hopping


def test_builder_section_rewrites_and_shorthands():
    config = (
        ConfigBuilder.baseline()
        .frontend(fetch_width=4)
        .backend(num_clusters=2)
        .memory(ul2_hit_latency=20)
        .interconnect(bus_latency=6)
        .power(vdd=0.9)
        .thermal(ambient_celsius=50.0)
        .steering(SteeringPolicy.ROUND_ROBIN)
        .named("custom")
        .build()
    )
    assert config.name == "custom"
    assert config.frontend.fetch_width == 4
    assert config.backend.num_clusters == 2
    assert config.memory.ul2_hit_latency == 20
    assert config.interconnect.bus_latency == 6
    assert config.power.vdd == 0.9
    assert config.thermal.ambient_celsius == 50.0
    assert config.steering_policy is SteeringPolicy.ROUND_ROBIN


def test_builder_biased_mapping_threshold():
    config = ConfigBuilder.baseline().biased_mapping(threshold_celsius=6.0).build()
    assert config.frontend.trace_cache.thermal_aware_mapping
    assert config.frontend.trace_cache.bias_threshold_celsius == 6.0


def test_builder_validation_still_applies():
    with pytest.raises(ValueError):
        # Bank hopping without a spare physical bank is rejected by the
        # TraceCacheConfig invariants, through the builder as well.
        ConfigBuilder.baseline().trace_cache(bank_hopping=True)


def test_scale_paper_intervals_rescales_defaults_only():
    scaled = scale_paper_intervals(bank_hopping_config(), 900)
    tc = scaled.frontend.trace_cache
    assert tc.hop_interval_cycles == 900
    assert tc.remap_interval_cycles == 900
    assert scaled.thermal.interval_cycles == 900
    assert scaled.name == "bank_hopping"

    # A deliberately small (ablation-set) interval is preserved.
    deliberate = (
        ConfigBuilder.from_config(bank_hopping_config())
        .trace_cache(hop_interval_cycles=1_234)
        .build()
    )
    rescaled = scale_paper_intervals(deliberate, 900)
    assert rescaled.frontend.trace_cache.hop_interval_cycles == 1_234
    assert rescaled.frontend.trace_cache.remap_interval_cycles == 900
    assert UNSCALED_INTERVAL_THRESHOLD > 1_234

    with pytest.raises(ValueError):
        scale_paper_intervals(baseline_config(), 0)


def test_scaled_intervals_builder_method_matches_function():
    via_builder = ConfigBuilder.from_config(bank_hopping_config()).scaled_intervals(900).build()
    assert via_builder == scale_paper_intervals(bank_hopping_config(), 900)


def test_presets_cover_all_organizations():
    configs = [
        baseline_config(),
        distributed_rename_commit_config(),
        address_biasing_config(),
        blank_silicon_config(),
        bank_hopping_config(),
        bank_hopping_biasing_config(),
        distributed_frontend_config(),
    ]
    assert [c.name for c in configs] == [o.value for o in FrontendOrganization]

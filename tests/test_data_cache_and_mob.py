"""Unit tests for the L1 data cache and the memory order buffer."""

import pytest

from repro.backend.data_cache import L1DataCache
from repro.backend.mob import MemoryOrderBuffer, MemoryOrderBufferFullError


# ----------------------------------------------------------------------
# L1 data cache
# ----------------------------------------------------------------------
def test_dcache_miss_then_hit():
    cache = L1DataCache(16, 2, 64)
    assert cache.access(0x1000) is False
    assert cache.access(0x1000) is True
    assert cache.access(0x1008) is True  # same line
    assert cache.hits == 2 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(2 / 3)


def test_dcache_lru_eviction():
    cache = L1DataCache(1, 2, 64)  # 1 KB, 2-way, 8 sets
    way_stride = cache.num_sets * cache.line_bytes
    a, b, c = 0x0, way_stride, 2 * way_stride
    cache.access(a)
    cache.access(b)
    cache.access(a)      # refresh a, so b is LRU
    cache.access(c)      # evicts b
    assert cache.access(a) is True
    assert cache.access(b) is False


def test_dcache_store_allocates():
    cache = L1DataCache(16, 2, 64)
    assert cache.access(0x2000, is_store=True) is False
    assert cache.access(0x2000) is True


def test_dcache_update_refreshes_existing_line_only():
    cache = L1DataCache(1, 2, 64)
    cache.access(0x0)
    cache.update(0x40_000)  # not present: no allocation
    assert cache.occupancy() == 1
    cache.update(0x0)
    assert cache.occupancy() == 1


def test_dcache_validates_geometry():
    with pytest.raises(ValueError):
        L1DataCache(0, 2, 64)
    with pytest.raises(ValueError):
        L1DataCache(16, 0, 64)


# ----------------------------------------------------------------------
# Memory order buffer
# ----------------------------------------------------------------------
def test_mob_allocate_and_release():
    mob = MemoryOrderBuffer(4)
    mob.allocate(3)
    assert mob.occupancy == 3 and mob.free_slots == 1
    assert mob.can_allocate(1) and not mob.can_allocate(2)
    mob.release(2)
    assert mob.occupancy == 1


def test_mob_overflow_and_underflow_raise():
    mob = MemoryOrderBuffer(2)
    mob.allocate(2)
    with pytest.raises(MemoryOrderBufferFullError):
        mob.allocate()
    with pytest.raises(ValueError):
        mob.release(3)


def test_mob_disambiguation_counter():
    mob = MemoryOrderBuffer(8)
    mob.record_disambiguation()
    mob.record_disambiguation()
    assert mob.disambiguation_updates == 2


def test_mob_requires_positive_capacity():
    with pytest.raises(ValueError):
        MemoryOrderBuffer(0)

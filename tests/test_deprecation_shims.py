"""The legacy ``repro.experiments.runner`` shim warns but keeps working."""

from __future__ import annotations

import importlib
import sys

import pytest


def _fresh_import_runner():
    """Import the shim as a first-time import, even if another test got there."""
    sys.modules.pop("repro.experiments.runner", None)
    return importlib.import_module("repro.experiments.runner")


def test_runner_import_emits_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="repro.experiments.runner is deprecated"):
        _fresh_import_runner()


def test_runner_reexports_are_the_campaign_objects():
    """The shim's names are identical objects, not copies — no drift possible."""
    import repro.campaign as campaign

    with pytest.warns(DeprecationWarning):
        runner = _fresh_import_runner()
    assert runner.ExperimentSettings is campaign.ExperimentSettings
    assert runner.ConfigurationSummary is campaign.ConfigurationSummary
    assert runner.run_configuration is campaign.run_configuration
    assert runner.summarize is campaign.summarize
    assert runner.summarize_many is campaign.summarize_many
    assert runner.QUICK_BENCHMARKS is campaign.QUICK_BENCHMARKS


def test_package_imports_stay_warning_free(recwarn):
    """Importing the supported entry points must not trigger the deprecation.

    ``repro``, ``repro.campaign`` and ``repro.experiments`` all moved off the
    shim; only an explicit ``repro.experiments.runner`` import may warn.
    """
    for name in (
        "repro",
        "repro.campaign",
        "repro.experiments",
        # Evict the shim too: earlier tests import it, and a cached module
        # would mask a reintroduced shim import in the packages above.
        "repro.experiments.runner",
    ):
        sys.modules.pop(name, None)
    importlib.import_module("repro")
    importlib.import_module("repro.campaign")
    importlib.import_module("repro.experiments")
    deprecations = [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        and "repro.experiments.runner" in str(w.message)
    ]
    assert not deprecations

"""Unit tests for the distributed rename mechanism (Section 3.1.1)."""

import pytest

from repro.backend.cluster import Cluster
from repro.core.distributed_rename import (
    AvailabilityTable,
    ClusterFreeLists,
    DistributedRenameUnit,
)
from repro.core.presets import distributed_rename_commit_config
from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterSpace
from repro.sim import blocks
from repro.sim.config import ProcessorConfig
from repro.sim.stats import ActivityCounters, SimulationStats
from repro.sim.uop import DynamicUop

SPACE = RegisterSpace()
_SEQ = iter(range(1000000))


def _machinery():
    config = distributed_rename_commit_config()
    clusters = [Cluster(c, config.backend, config.memory) for c in range(4)]
    activity = ActivityCounters(blocks.all_blocks(config))
    stats = SimulationStats()
    unit = DistributedRenameUnit(config, clusters, SPACE, activity, stats)
    return config, clusters, unit, activity, stats


def _alu(dest, sources, pc=0x200):
    return MicroOp(pc=pc, uop_class=UopClass.IALU, dest=dest, sources=tuple(sources))


def _rename(unit, static, cluster):
    dynamic = DynamicUop(static, next(_SEQ))
    return unit.rename(dynamic, cluster, 0, lambda: next(_SEQ))


# ----------------------------------------------------------------------
# Availability table and freelists
# ----------------------------------------------------------------------
def test_availability_table_tracks_copies_per_cluster():
    table = AvailabilityTable(SPACE, num_clusters=4)
    table.set_copy(3, 1)
    table.set_copy(3, 2)
    assert table.has_copy(3, 1) and table.has_copy(3, 2)
    assert not table.has_copy(3, 0)
    assert table.clusters_with_copy(3) == [1, 2]
    table.clear_register(3, 0)
    assert table.clusters_with_copy(3) == [0]
    table.clear_all(3)
    assert table.entry_bits(3) == 0
    assert table.reads > 0 and table.writes > 0


def test_cluster_freelists_wrap_the_backend_register_files():
    config = ProcessorConfig.baseline()
    clusters = [Cluster(c, config.backend, config.memory) for c in range(2)]
    freelists = ClusterFreeLists(clusters)
    assert freelists.free_registers(0, is_fp=False) == 160
    index = freelists.allocate(0, is_fp=False)
    assert clusters[0].int_rf.is_allocated(index)
    assert freelists.free_registers(0, is_fp=False) == 159
    assert freelists.can_allocate(1, is_fp=True, count=160)
    assert freelists.allocations == 1


# ----------------------------------------------------------------------
# Distributed rename unit
# ----------------------------------------------------------------------
def test_requires_at_least_two_frontends():
    config = ProcessorConfig.baseline()
    clusters = [Cluster(c, config.backend, config.memory) for c in range(4)]
    with pytest.raises(ValueError):
        DistributedRenameUnit(
            config, clusters, SPACE, ActivityCounters(blocks.all_blocks(config)), SimulationStats()
        )


def test_rat_activity_charged_to_owning_partition():
    _, _, unit, activity, _ = _machinery()
    # Cluster 0 belongs to frontend 0, cluster 3 to frontend 1.
    _rename(unit, _alu(SPACE.int_reg(1), [SPACE.int_reg(0)]), cluster=0)
    _rename(unit, _alu(SPACE.int_reg(2), [SPACE.int_reg(0)]), cluster=3)
    totals = activity.total_counts()
    assert totals["RAT0"] >= 2
    assert totals["RAT1"] >= 2


def test_intra_frontend_copy_generates_no_copy_request():
    _, _, unit, _, stats = _machinery()
    _rename(unit, _alu(SPACE.int_reg(1), []), cluster=0)
    outcome = _rename(unit, _alu(SPACE.int_reg(2), [SPACE.int_reg(1)]), cluster=1)
    assert len(outcome.copies) == 1
    assert stats.copy_requests_between_frontends == 0
    assert unit.copy_request_count() == 0


def test_inter_frontend_copy_generates_a_copy_request():
    config, _, unit, _, stats = _machinery()
    _rename(unit, _alu(SPACE.int_reg(1), []), cluster=0)       # frontend 0 produces
    outcome = _rename(unit, _alu(SPACE.int_reg(2), [SPACE.int_reg(1)]), cluster=2)  # frontend 1 consumes
    assert len(outcome.copies) == 1
    assert stats.copy_requests_between_frontends == 1
    assert unit.copy_request_count() == 1
    request = unit.copy_requests[0]
    assert request.source_frontend == 0
    assert request.dest_frontend == 1
    assert request.dest_cluster == 2
    assert request.logical_flat == SPACE.flat_index(SPACE.int_reg(1))
    assert unit.copy_requests_by_direction() == {(0, 1): 1}


def test_availability_updated_by_writes_and_copies():
    _, _, unit, _, _ = _machinery()
    flat = SPACE.flat_index(SPACE.int_reg(1))
    _rename(unit, _alu(SPACE.int_reg(1), []), cluster=0)
    assert unit.availability.clusters_with_copy(flat) == [0]
    _rename(unit, _alu(SPACE.int_reg(2), [SPACE.int_reg(1)]), cluster=3)
    assert 3 in unit.availability.clusters_with_copy(flat)
    # A new write supersedes every copy.
    _rename(unit, _alu(SPACE.int_reg(1), []), cluster=2)
    assert unit.availability.clusters_with_copy(flat) == [2]


def test_partition_of_cluster_matches_config():
    config, _, unit, _, _ = _machinery()
    assert unit.partition_of_cluster(0) == 0
    assert unit.partition_of_cluster(3) == 1


def test_rename_semantics_identical_to_centralized():
    """Distribution must not change which physical registers consumers read."""
    _, clusters, unit, _, _ = _machinery()
    producer = _rename(unit, _alu(SPACE.int_reg(1), []), cluster=1)
    consumer = _rename(unit, _alu(SPACE.int_reg(2), [SPACE.int_reg(1)]), cluster=1)
    assert consumer.uop.src_refs == [producer.uop.dest_ref]
    remote = _rename(unit, _alu(SPACE.int_reg(3), [SPACE.int_reg(1)]), cluster=2)
    assert remote.copies and remote.uop.src_refs == [remote.copies[0].dest_ref]

"""The documentation site stays truthful.

``tools/check_docs.py`` validates every relative link and compiles every
``python`` fence; the full run (CI's docs job, and
``test_docs_smoke_snippets_execute`` here) also *executes* the fences
tagged ``<!-- docs-smoke -->`` — the DTM tutorial's policy sweep among them
— so the documented workflow cannot rot.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_docs_tree_exists():
    for page in ("index.md", "architecture.md", "interval-pipeline.md",
                 "dtm.md", "scenarios.md", "campaign.md"):
        assert (REPO_ROOT / "docs" / page).exists(), page


def test_docs_links_and_fences_are_valid():
    """Fast pass: every link resolves, every python fence parses."""
    assert check_docs.main(["--no-run"]) == 0


def test_docs_index_links_every_guide():
    index = (REPO_ROOT / "docs" / "index.md").read_text()
    for page in ("architecture.md", "interval-pipeline.md", "dtm.md",
                 "scenarios.md", "campaign.md"):
        assert page in index, f"docs/index.md does not link {page}"


def test_broken_links_are_detected(tmp_path, monkeypatch):
    """The checker itself works: a fabricated broken link must fail."""
    bad = tmp_path / "bad.md"
    bad.write_text("see [nowhere](does-not-exist.md)\n")
    monkeypatch.setattr(check_docs, "DOC_FILES", [bad])
    assert check_docs.main(["--no-run"]) == 1


@pytest.mark.slow
def test_docs_smoke_snippets_execute():
    """Execute the tagged tutorial snippets end to end (the CI docs job)."""
    assert check_docs.main([]) == 0

"""Dynamic-thermal-management invariants.

Three properties anchor the subsystem:

1. *Clamping*: no policy — however buggy or adversarial — can push a block
   outside its voltage/frequency table, stop fetch outright, or escape the
   duty quantization.  The clamps live in :class:`repro.dtm.DTMControls`,
   so they hold for every policy by construction.
2. *Efficacy*: the hybrid policy reduces the peak temperature of the
   thermal-virus scenario versus running without DTM.
3. *Bit-exactness*: the no-op policy leaves every power/thermal number of a
   run bit-identical to running with no DTM at all (the golden fixtures of
   ``tests/test_golden_metrics.py`` stay valid unmodified).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import Campaign, ExperimentSettings, run_campaign
from repro.campaign.builder import scale_paper_intervals
from repro.core.presets import baseline_config, bank_hopping_biasing_config
from repro.dtm import (
    DEFAULT_VF_TABLE,
    DTMControls,
    DTMObservation,
    DTMPolicy,
    FETCH_DUTY_PERIOD,
    NoDTMPolicy,
    VFPoint,
    VFTable,
    available_policies,
    make_policy,
)
from repro.sim.block_index import BlockIndex
from repro.sim.engine import run_benchmark
from repro.workloads.generator import TraceGenerator


# ----------------------------------------------------------------------
# 1. Clamping: the actuators bound every request
# ----------------------------------------------------------------------
class _AdversarialPolicy(DTMPolicy):
    """Requests far outside every legal range, every interval."""

    def __init__(self) -> None:
        super().__init__("adversarial")

    def apply(self, observation: DTMObservation, controls: DTMControls) -> None:
        controls.request_fetch_duty(-3.0)          # below zero
        controls.request_step(list(observation.index), 999)   # beyond the table
        controls.request_fetch_duty(7.5)           # above one
        controls.request_step(list(observation.index), -999)  # above nominal


def _controls() -> DTMControls:
    return DTMControls(BlockIndex(["A", "B", "C"]))


def test_fetch_duty_requests_are_clamped_and_quantized():
    controls = _controls()
    assert controls.request_fetch_duty(-1.0) == 1 / FETCH_DUTY_PERIOD
    assert controls.request_fetch_duty(0.0) == 1 / FETCH_DUTY_PERIOD
    assert controls.request_fetch_duty(5.0) == 1.0
    granted = controls.request_fetch_duty(0.3)
    assert granted == round(0.3 * FETCH_DUTY_PERIOD) / FETCH_DUTY_PERIOD
    assert 1 / FETCH_DUTY_PERIOD <= granted <= 1.0


def test_vf_steps_are_clamped_into_the_table():
    controls = _controls()
    table = controls.table
    assert controls.request_step(["A", "B"], 10_000) == len(table) - 1
    assert controls.request_step(["A"], -5) == 0
    # Unknown block names are ignored rather than raising.
    assert controls.request_step(["nonexistent"], 2) == 2
    # The scale vectors always correspond to real table points.
    legal_dynamic = {p.dynamic_scale for p in table.points}
    legal_leakage = {p.leakage_scale for p in table.points}
    assert set(np.unique(controls.dynamic_scale)) <= legal_dynamic
    assert set(np.unique(controls.leakage_scale)) <= legal_leakage


def test_vf_table_rejects_overclocking_and_disorder():
    with pytest.raises(ValueError):
        VFPoint(1.2, 1.0)
    with pytest.raises(ValueError):
        VFPoint(1.0, 0.0)
    with pytest.raises(ValueError):
        VFTable(((0.9, 0.9),))  # step 0 must be nominal
    with pytest.raises(ValueError):
        VFTable(((1.0, 1.0), (0.7, 0.9), (0.8, 0.95)))  # not descending


def test_adversarial_policy_cannot_escape_the_actuator_bounds():
    config = scale_paper_intervals(baseline_config(), 800)
    trace = TraceGenerator("gzip", seed=3).generate(2_500)
    result = run_benchmark(
        config, trace.uops, "gzip", interval_cycles=800,
        dtm_policy=_AdversarialPolicy(),
    )
    # The run completes, and the telemetry shows only legal actuator states.
    assert result.dtm["policy"] == "adversarial"
    assert 0.0 <= result.dtm["throttle_ratio"] <= 1.0 - 1 / FETCH_DUTY_PERIOD
    assert result.dtm["mean_freq_ratio"] >= DEFAULT_VF_TABLE.min_freq_ratio
    legal_ratios = {f"{p.freq_ratio:g}" for p in DEFAULT_VF_TABLE.points}
    assert set(result.dtm["dvfs_residency"]) <= legal_ratios


# ----------------------------------------------------------------------
# 2. Efficacy: hybrid DTM cools the thermal virus
# ----------------------------------------------------------------------
def _run_virus(policy_spec):
    settings = ExperimentSettings(
        benchmarks=("thermal_virus",),
        uops_per_benchmark=8_000,
        seed=7,
        honor_relative_length=False,
    )
    interval = settings.resolved_interval_cycles()
    config = scale_paper_intervals(bank_hopping_biasing_config(), interval)
    trace = TraceGenerator("thermal_virus", seed=settings.seed).generate(
        settings.uops_per_benchmark
    )
    policy = make_policy(policy_spec) if policy_spec else None
    return run_benchmark(
        config, trace.uops, "thermal_virus",
        interval_cycles=interval, dtm_policy=policy,
    )


def test_hybrid_policy_reduces_peak_temperature_on_thermal_virus():
    baseline = _run_virus(None)
    hybrid = _run_virus("hybrid")
    assert hybrid.peak_temperature() < baseline.peak_temperature()
    # The cooling is bought with wall-clock time, never for free.
    assert hybrid.total_seconds() >= baseline.total_seconds()
    assert hybrid.dtm["throttle_ratio"] > 0.0 or hybrid.dtm["mean_freq_ratio"] < 1.0


def test_policies_stay_disengaged_on_the_cool_control_scenario():
    settings = ExperimentSettings(
        benchmarks=("idle_crawl",), uops_per_benchmark=6_000, seed=7,
        honor_relative_length=False,
    )
    interval = settings.resolved_interval_cycles()
    config = scale_paper_intervals(baseline_config(), interval)

    def run(policy_spec):
        trace = TraceGenerator("idle_crawl", seed=7).generate(6_000)
        policy = make_policy(policy_spec) if policy_spec else None
        return run_benchmark(config, trace.uops, "idle_crawl",
                             interval_cycles=interval, dtm_policy=policy)

    baseline = run(None)
    for spec in ("fetch_throttle", "clock_gate", "dvfs", "hybrid"):
        managed = run(spec)
        assert managed.dtm["throttle_ratio"] == 0.0, spec
        assert managed.dtm["gated_intervals"] == 0, spec
        assert managed.dtm["mean_freq_ratio"] == 1.0, spec
        assert managed.stats.cycles == baseline.stats.cycles, spec


# ----------------------------------------------------------------------
# 3. Bit-exactness of the no-op policy
# ----------------------------------------------------------------------
def test_noop_policy_is_bit_identical_to_no_dtm():
    """Every interval's power and temperature match bit for bit.

    This is the same property the golden fixtures lock for the engine
    without DTM; together they prove attaching a silent policy cannot
    perturb the paper's numbers.
    """
    config = scale_paper_intervals(bank_hopping_biasing_config(), 800)

    def run(policy):
        trace = TraceGenerator("gzip", seed=7).generate(3_000)
        return run_benchmark(config, trace.uops, "gzip",
                             interval_cycles=800, dtm_policy=policy)

    plain = run(None)
    noop = run(NoDTMPolicy())
    assert plain.stats.cycles == noop.stats.cycles
    assert plain.warmup_temperature == noop.warmup_temperature
    assert len(plain.intervals) == len(noop.intervals)
    for a, b in zip(plain.intervals, noop.intervals):
        assert a.seconds == b.seconds
        assert a.dynamic_power == b.dynamic_power
        assert a.leakage_power == b.leakage_power
        assert a.temperature == b.temperature
    # The only difference is that the no-op run reports DTM telemetry.
    assert plain.dtm == {}
    assert noop.dtm["policy"] == "none"
    assert noop.dtm["throttle_ratio"] == 0.0


# ----------------------------------------------------------------------
# Campaign integration: the policy axis
# ----------------------------------------------------------------------
def test_campaign_policy_axis_expands_and_keys_variants():
    settings = ExperimentSettings(benchmarks=("gzip", "swim"), uops_per_benchmark=1_500)
    campaign = Campaign(
        (baseline_config(),), settings, name="axis",
        dtm_policies=("none", "dvfs:target=80"),
    )
    assert len(campaign) == 4
    cells = campaign.cells()
    assert [c.dtm_policy for c in cells] == ["none", "none", "dvfs:target=80", "dvfs:target=80"]
    assert campaign.variant_names() == ("baseline@none", "baseline@dvfs:target=80")
    # Cache keys and provenance carry the policy; policy-free cells do not.
    assert "dtm_policy" in cells[2].key_material()
    plain = Campaign((baseline_config(),), settings).cells()[0]
    assert "dtm_policy" not in plain.key_material()

    outcome = run_campaign(campaign)
    assert set(outcome.summaries) == {"baseline@none", "baseline@dvfs:target=80"}
    result = outcome.summaries["baseline@dvfs:target=80"].results["gzip"]
    assert result.provenance["dtm_policy"] == "dvfs:target=80"
    assert result.dtm["policy"] == "dvfs:target=80"
    # The no-op policy axis reproduces the plain campaign's metrics exactly.
    plain_outcome = run_campaign(Campaign((baseline_config(),), settings))
    for benchmark in settings.benchmarks:
        a = plain_outcome.summaries["baseline"].results[benchmark]
        b = outcome.summaries["baseline@none"].results[benchmark]
        assert a.temperature_metrics("Processor") == b.temperature_metrics("Processor")
        assert a.stats.cycles == b.stats.cycles


def test_unknown_policy_fails_at_campaign_construction():
    settings = ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_000)
    with pytest.raises(ValueError, match="unknown DTM policy"):
        Campaign((baseline_config(),), settings, dtm_policies=("warp_drive",))


def test_policy_declared_vf_table_reaches_the_engine_controls():
    """A custom table= on DVFSPolicy governs the run, not the default ladder."""
    from repro.dtm import DVFSPolicy

    table = VFTable(((1.0, 1.0), (0.5, 0.7)))
    policy = DVFSPolicy(target=0.0, table=table)  # always hotter than target
    config = scale_paper_intervals(baseline_config(), 800)
    trace = TraceGenerator("gzip", seed=3).generate(2_500)
    result = run_benchmark(
        config, trace.uops, "gzip", interval_cycles=800, dtm_policy=policy
    )
    residency = result.dtm["dvfs_residency"]
    assert set(residency) <= {"1", "0.5"}
    assert residency.get("0.5", 0.0) > 0.0
    assert result.dtm["mean_freq_ratio"] < 1.0


def test_policy_objects_are_reusable_across_runs():
    """bind() resets controller state: a reused policy starts each run cold."""
    from repro.dtm import ClockGatePolicy, FetchThrottlePolicy

    config = scale_paper_intervals(baseline_config(), 800)
    index = BlockIndex(["A"])
    controls = DTMControls(index)

    throttle = FetchThrottlePolicy(trigger=50.0)
    throttle._engaged = True
    throttle.bind(index, config, controls)
    assert throttle._engaged is False

    gate = ClockGatePolicy(trigger=50.0)
    gate._stopped = 5
    gate.bind(index, config, controls)
    assert gate._stopped == 0


def test_make_policy_parses_parameters_and_rejects_garbage():
    policy = make_policy("fetch_throttle:trigger=80,duty=0.25")
    assert policy.trigger_celsius == 80.0 and policy.duty == 0.25
    assert set(available_policies()) >= {"none", "fetch_throttle", "clock_gate", "dvfs", "hybrid"}
    with pytest.raises(ValueError):
        make_policy("dvfs:target")          # malformed parameter
    with pytest.raises(ValueError):
        make_policy("dvfs:warp=9")          # unknown keyword
    with pytest.raises(ValueError):
        make_policy("dvfs:target=hot")      # non-numeric value

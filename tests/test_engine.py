"""Integration tests of the coupled timing / power / thermal engine."""

import pytest

from repro.core.presets import (
    address_biasing_config,
    bank_hopping_config,
    baseline_config,
    blank_silicon_config,
)
from repro.sim import blocks
from repro.sim.engine import SimulationEngine, run_benchmark
from repro.workloads.generator import TraceGenerator

INTERVAL = 400


def _engine(config, benchmark="gzip", n=2500, **kwargs):
    trace = TraceGenerator(benchmark, seed=5).generate(n)
    return SimulationEngine(
        config.with_intervals(INTERVAL), trace.uops, benchmark,
        interval_cycles=INTERVAL, **kwargs
    )


def test_engine_produces_intervals_and_metrics():
    engine = _engine(baseline_config())
    result = engine.run()
    assert result.stats.committed_uops == 2500
    assert len(result.intervals) >= 3
    metrics = result.temperature_metrics("Frontend")
    assert metrics["AbsMax"] >= metrics["Average"] > 0
    assert result.average_power() > 10.0
    assert result.peak_temperature() > result.ambient_celsius + 5.0


def test_warmup_starts_the_processor_hot():
    engine = _engine(baseline_config())
    result = engine.run()
    # The paper starts simulations with the processor already warm: the
    # warm-up temperatures are well above ambient and below the emergency cap.
    assert min(result.warmup_temperature.values()) > result.ambient_celsius + 1.0
    assert max(result.warmup_temperature.values()) <= engine.config.thermal.emergency_limit_celsius + 1e-6


def test_temperatures_stay_physical_every_interval():
    result = _engine(baseline_config(), benchmark="swim").run()
    for record in result.intervals:
        for temperature in record.temperature.values():
            assert result.ambient_celsius - 1e-6 <= temperature < 250.0
        assert record.total_power() > 0


def test_disabling_warmup_starts_from_ambient():
    engine = _engine(baseline_config())
    result = engine.run(warmup=False)
    first = result.intervals[0]
    assert max(first.temperature.values()) < 80.0


def test_bank_hopping_rotates_the_gated_bank_and_flushes():
    engine = _engine(bank_hopping_config())
    gated_before = set(engine.hopping.gated_banks)
    result = engine.run()
    assert engine.hopping.num_hops >= 1
    assert result.stats.trace_cache_hop_flushes > 0
    # The gated bank dissipates nothing in the interval it is gated.
    for record in result.intervals[1:]:
        gated_blocks = [b for b in blocks.trace_cache_blocks(engine.config)
                        if record.dynamic_power[b] == 0.0]
        assert len(gated_blocks) >= 1
    assert set(engine.hopping.gated_banks) != gated_before or engine.hopping.num_hops % 3 == 0


def test_blank_silicon_statically_gates_the_extra_bank():
    engine = _engine(blank_silicon_config())
    result = engine.run()
    assert engine.hopping is not None and not engine.hopping.enabled
    for record in result.intervals:
        assert record.dynamic_power["TC2"] == 0.0
        assert record.leakage_power["TC2"] == 0.0


def test_thermal_aware_mapping_biases_towards_the_colder_bank():
    engine = _engine(address_biasing_config(), benchmark="swim", n=3500)
    engine.run()
    shares = engine.processor.trace_cache.accesses_per_bank_share()
    # After remapping, shares are generally unequal (the colder bank gets
    # more); at minimum the mapping table stays consistent.
    assert sum(shares.values()) == pytest.approx(1.0)


def test_run_benchmark_convenience_wrapper():
    trace = TraceGenerator("gcc", seed=2).generate(2000)
    result = run_benchmark(
        baseline_config().with_intervals(INTERVAL), trace.uops, "gcc",
        interval_cycles=INTERVAL,
    )
    assert result.benchmark == "gcc"
    assert result.stats.committed_uops == 2000


def test_max_intervals_truncates_the_run():
    engine = _engine(baseline_config())
    result = engine.run(max_intervals=2)
    assert len(result.intervals) == 2
    assert not engine.processor.finished


def test_prewarming_avoids_ul2_cold_misses():
    config = baseline_config().with_intervals(INTERVAL)
    trace = TraceGenerator("mcf", seed=9).generate(2500)
    warm = SimulationEngine(config, trace.uops, "mcf", INTERVAL, prewarm_caches=True).run()
    cold = SimulationEngine(config, list(trace.uops), "mcf", INTERVAL, prewarm_caches=False).run()
    assert warm.stats.ul2_misses < cold.stats.ul2_misses
    assert warm.stats.cycles <= cold.stats.cycles

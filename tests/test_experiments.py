"""Integration tests of the experiment runner and figure drivers (smoke scale)."""

import pytest

from repro.core.presets import baseline_config, distributed_rename_commit_config
from repro.experiments import (
    ExperimentSettings,
    describe_floorplans,
    run_fig01,
    summarize,
)
from repro.experiments.reporting import (
    format_key_values,
    format_percentage_table,
    format_value_table,
)
from repro.campaign import run_configuration, summarize_many


@pytest.fixture(scope="module")
def smoke_settings():
    return ExperimentSettings(benchmarks=("gzip", "swim"), uops_per_benchmark=2000)


def test_settings_validation_and_presets():
    with pytest.raises(ValueError):
        ExperimentSettings(benchmarks=())
    with pytest.raises(KeyError):
        ExperimentSettings(benchmarks=("notabench",))
    with pytest.raises(ValueError):
        ExperimentSettings(uops_per_benchmark=0)
    assert len(ExperimentSettings.full().benchmarks) == 26
    assert len(ExperimentSettings.quick().benchmarks) == 8
    assert ExperimentSettings.smoke().benchmarks == ("gzip", "swim")
    derived = ExperimentSettings(uops_per_benchmark=50_000).resolved_interval_cycles()
    assert derived == 50_000 // 25
    floored = ExperimentSettings(uops_per_benchmark=5000).resolved_interval_cycles()
    assert floored == 800  # never hop/remap at a finer grain than this
    explicit = ExperimentSettings(interval_cycles=777).resolved_interval_cycles()
    assert explicit == 777
    narrowed = ExperimentSettings.full().with_benchmarks(["gcc"])
    assert narrowed.benchmarks == ("gcc",)


def test_run_configuration_returns_one_result_per_benchmark(smoke_settings):
    results = run_configuration(baseline_config(), smoke_settings)
    assert set(results) == {"gzip", "swim"}
    for benchmark, result in results.items():
        assert result.benchmark == benchmark
        assert result.stats.committed_uops > 0
        assert result.intervals


def test_swim_trace_is_shortened_like_the_paper(smoke_settings):
    results = run_configuration(baseline_config(), smoke_settings)
    assert results["swim"].stats.committed_uops < results["gzip"].stats.committed_uops


def test_summary_aggregation(smoke_settings):
    baseline = summarize(baseline_config(), smoke_settings)
    distributed = summarize(distributed_rename_commit_config(), smoke_settings)
    metrics = baseline.mean_metrics("Frontend")
    assert metrics["AbsMax"] >= metrics["Average"] > 0
    reductions = distributed.mean_reductions_vs(baseline, "ReorderBuffer")
    assert set(reductions) == {"AbsMax", "Average", "AvgMax"}
    assert reductions["Average"] > 0.0
    assert abs(distributed.mean_slowdown_vs(baseline)) < 0.2
    assert baseline.mean_power() > 10.0
    assert baseline.mean_power("Frontend") < baseline.mean_power()
    assert 0.0 < baseline.mean_trace_cache_hit_rate() <= 1.0
    assert baseline.mean_ipc() > 0.0
    assert distributed.group_area_mm2("Processor") > baseline.group_area_mm2("Processor")


def test_summarize_many_keys_by_config_name(smoke_settings):
    summaries = summarize_many(
        [baseline_config(), distributed_rename_commit_config()], smoke_settings
    )
    assert set(summaries) == {"baseline", "distributed_rc"}


def test_fig01_driver_smoke(smoke_settings):
    result = run_fig01(smoke_settings)
    table = result.format_table()
    assert "Figure 1" in table and "Frontend" in table
    assert set(result.values) == {"Processor", "Frontend", "Backend", "UL2"}


def test_floorplan_reports():
    reports = describe_floorplans()
    assert set(reports) == {
        "baseline (Figure 10)", "bank hopping (Figure 11)", "distributed rename/commit"
    }
    for report in reports.values():
        assert 0.05 < report.frontend_area_fraction() < 0.5
        assert "Floorplan" in report.format_table()


def test_reporting_formatters():
    table = format_percentage_table(
        "title", {"row": {"A": 0.5}}, columns=("A", "B"),
        paper_reference={"row": {"A": 0.4}},
    )
    assert "50.0%" in table and "paper 40%" in table and "-" in table
    values = format_value_table("title", {"row": {"X": 1.234}}, columns=("X",), precision=2)
    assert "1.23" in values
    keys = format_key_values("title", {"k": 1.0, "s": "text"})
    assert "k" in keys and "text" in keys

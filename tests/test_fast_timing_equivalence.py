"""Fast-vs-reference timing equivalence.

The vectorized fast timing path (:mod:`repro.sim.fast_timing`, optionally
backed by the runtime-compiled native core in :mod:`repro.sim.native`) claims
to be **byte-identical** to the per-uop golden reference
(:class:`repro.sim.processor.Processor`): same :class:`SimulationStats`
payload, same :class:`ActivityTrace` down to its canonical JSON encoding.
These tests lock that contract across the paper's frontend organizations,
steering policies, fetch-gate duty cycles and the chip engine — and pin the
``timing_mode`` selector's fallback behaviour for configurations the fast
path does not claim.

The native core is exercised both ways: with the compiled backend (when a C
compiler is available) and with the pure-Python fast loop forced via the
``REPRO_NATIVE=0`` kill-switch.  Both must match the reference exactly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.presets import (
    address_biasing_config,
    bank_hopping_biasing_config,
    bank_hopping_config,
    baseline_config,
    blank_silicon_config,
    distributed_frontend_config,
    distributed_rename_commit_config,
)
from repro.sim.config import SteeringPolicy
from repro.sim.engine import SimulationEngine
from repro.sim.fast_timing import FastProcessor
from repro.sim.processor import Processor
from repro.workloads import decode_workload
from repro.workloads.generator import TraceGenerator

TRACE_UOPS = 2_000


def _uops(benchmark="gzip", seed=7, n=TRACE_UOPS):
    return TraceGenerator(benchmark, seed=seed).generate(n).uops


def _assert_equivalent(config, uops, benchmark, interval_cycles=800, max_intervals=None):
    """Run both timing paths and assert byte-identical outputs."""
    ref = SimulationEngine(
        config, list(uops), benchmark,
        interval_cycles=interval_cycles, timing_mode="reference",
    )
    fast = SimulationEngine(
        config, list(uops), benchmark,
        interval_cycles=interval_cycles, timing_mode="fast",
    )
    assert ref.resolved_timing_mode == "reference"
    assert fast.resolved_timing_mode == "fast"
    ref_result, ref_trace = ref.run_with_trace(max_intervals=max_intervals)
    fast_result, fast_trace = fast.run_with_trace(max_intervals=max_intervals)
    assert ref_result.stats.to_payload() == fast_result.stats.to_payload()
    assert ref_trace.to_json() == fast_trace.to_json()
    return fast


@pytest.mark.parametrize(
    "bench,seed",
    [("gzip", 7), ("mcf", 3), ("swim", 11), ("hot_loop", 5)],
)
def test_baseline_byte_equivalence(bench, seed):
    _assert_equivalent(baseline_config(), _uops(bench, seed), bench)


def test_bank_hopping_byte_equivalence():
    _assert_equivalent(
        bank_hopping_config(), _uops(), "gzip", interval_cycles=400
    )


def test_blank_silicon_byte_equivalence():
    _assert_equivalent(blank_silicon_config(), _uops(), "gzip")


def test_distributed_rename_commit_byte_equivalence():
    _assert_equivalent(distributed_rename_commit_config(), _uops(), "gzip")


@pytest.mark.parametrize(
    "policy", [SteeringPolicy.ROUND_ROBIN, SteeringPolicy.LOAD_BALANCE]
)
def test_steering_policy_byte_equivalence(policy):
    config = replace(baseline_config(), steering_policy=policy)
    _assert_equivalent(config, _uops(), "gzip")


def test_truncated_run_byte_equivalence():
    """``max_intervals`` truncation is a prefix of the full run on both paths."""
    _assert_equivalent(baseline_config(), _uops(), "gzip", max_intervals=2)


@pytest.mark.parametrize(
    "config_factory,on,period",
    [
        (baseline_config, 3, 8),
        (baseline_config, 1, 8),
        (distributed_rename_commit_config, 5, 8),
    ],
)
def test_fetch_gate_byte_equivalence(config_factory, on, period):
    """Raw processors under a fetch duty gate stay cycle-identical.

    Driven in odd-sized ``run_cycles`` chunks so interval boundaries land
    mid-gate-period, which is exactly how the DTM layer drives the stage.
    """
    config = config_factory()
    uops = _uops()
    ref = Processor(config, iter(list(uops)))
    fast = FastProcessor(config, list(uops))
    ref.set_fetch_gate(on, period)
    fast.set_fetch_gate(on, period)
    while not ref.finished and ref.cycle < 3_000:
        ref.run_cycles(137)
        fast.run_cycles(137)
        assert ref.activity.end_interval() == fast.activity.end_interval()
    assert ref.stats.to_payload() == fast.stats.to_payload()
    assert ref.cycle == fast.cycle


@pytest.mark.parametrize(
    "config_factory",
    [distributed_frontend_config, bank_hopping_biasing_config, address_biasing_config],
)
def test_unsupported_configurations_fall_back_to_reference(config_factory):
    """``auto`` refuses configurations the fast path does not claim."""
    config = config_factory()
    engine = SimulationEngine(config, _uops(), "gzip")
    assert engine.timing_mode == "auto"
    assert engine.resolved_timing_mode == "reference"
    assert engine.timing_fallback_reason is not None
    with pytest.raises(ValueError, match="timing_mode='fast' is not applicable"):
        SimulationEngine(config, _uops(), "gzip", timing_mode="fast")


def test_streaming_source_falls_back_to_reference():
    uops = _uops()
    engine = SimulationEngine(baseline_config(), iter(uops), "gzip")
    assert engine.resolved_timing_mode == "reference"
    assert "batch-decoded" in engine.timing_fallback_reason


def test_invalid_timing_mode_rejected():
    with pytest.raises(ValueError, match="timing_mode"):
        SimulationEngine(baseline_config(), _uops(), "gzip", timing_mode="turbo")


def test_python_fast_loop_byte_equivalence(monkeypatch):
    """With the native core disabled, the Python fast loop matches too."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    processor = FastProcessor(baseline_config(), _uops())
    assert not processor.uses_native_core
    fast = _assert_equivalent(baseline_config(), _uops(), "gzip")
    assert not fast.timing.processor.uses_native_core


def test_native_core_engaged_when_available(monkeypatch):
    """Default construction uses the compiled core whenever it builds."""
    from repro.sim import native

    monkeypatch.delenv("REPRO_NATIVE", raising=False)
    if native.load_library() is None:
        pytest.skip("no C compiler available to build the native core")
    processor = FastProcessor(baseline_config(), _uops())
    assert processor.uses_native_core


def test_chip_engine_fast_matches_reference():
    """Two-thread chip runs agree interval-for-interval across timing modes."""
    from repro.chip.engine import ChipEngine

    sources = [_uops("gzip", 7), _uops("swim", 11)]

    def run(mode):
        engine = ChipEngine(
            baseline_config(),
            [list(source) for source in sources],
            ["gzip", "swim"],
            interval_cycles=800,
            timing_mode=mode,
        )
        assert engine.resolved_timing_mode == mode
        return engine.run()

    ref = run("reference")
    fast = run("fast")
    assert len(ref.intervals) == len(fast.intervals)
    for a, b in zip(ref.intervals, fast.intervals):
        assert a.temperature == b.temperature
        assert a.dynamic_power == b.dynamic_power
        assert a.leakage_power == b.leakage_power
    assert ref.stats.to_payload() == fast.stats.to_payload()


def test_chip_engine_feedback_policy_falls_back():
    """Temperature-actuating chip policies force the golden reference."""
    from repro.chip.engine import ChipEngine

    engine = ChipEngine(
        baseline_config(),
        [_uops("gzip", 7)],
        ["gzip"],
        interval_cycles=800,
        chip_policy="core_migration",
    )
    assert engine.resolved_timing_mode == "reference"
    assert engine.timing_fallback_reason is not None


def test_decode_workload_is_exported():
    """``repro.workloads`` re-exports the batch decoder used by the fast path."""
    uops = _uops(n=64)
    decoded = decode_workload(uops)
    assert decoded.n == len(uops)
    assert len(decoded.cls_list) == len(uops)
    assert decoded.op_class.shape == (len(uops),)

"""Unit tests for the fetch unit."""

from repro.frontend.branch_predictor import BranchPredictor
from repro.frontend.fetch import FetchUnit
from repro.frontend.trace_cache import TraceCache
from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterSpace
from repro.sim import blocks
from repro.sim.config import FrontendConfig
from repro.sim.stats import ActivityCounters, SimulationStats

SPACE = RegisterSpace()


def _alu(pc):
    return MicroOp(pc=pc, uop_class=UopClass.IALU, dest=SPACE.int_reg(1),
                   sources=(SPACE.int_reg(0),))


def _branch(pc, mispredicted=False):
    return MicroOp(pc=pc, uop_class=UopClass.BRANCH, sources=(SPACE.int_reg(0),),
                   branch_taken=True, mispredicted=mispredicted)


def _make_fetch_unit(uops, config=None):
    config = config or FrontendConfig()
    activity = ActivityCounters(["TC0", "TC1", "ITLB", "DECO", "BP", "UL2"])
    stats = SimulationStats()
    cache = TraceCache(config.trace_cache, ul2_hit_latency=12)
    predictor = BranchPredictor(config.branch_predictor_entries)
    unit = FetchUnit(config, cache, predictor, iter(uops), activity, stats)
    return unit, activity, stats, cache


def test_fetch_width_limits_uops_per_cycle():
    uops = [_alu(0x1000 + 4 * i) for i in range(32)]
    unit, _, stats, _ = _make_fetch_unit(uops)
    # Cycle 0: the first line misses in the trace cache, so nothing returns.
    assert unit.fetch(0) == []
    resume = 12 + TraceCache.TRACE_BUILD_OVERHEAD
    fetched = unit.fetch(resume)
    assert len(fetched) == 8
    assert stats.fetched_uops == 8


def test_trace_cache_hit_after_loop_revisits_same_pcs():
    # A 16-micro-op loop body aligns exactly with the trace-line size, so
    # every iteration after the first reuses the same trace line.
    loop = [_alu(0x2000 + 4 * i) for i in range(15)] + [_branch(0x203c)]
    uops = loop * 4
    unit, _, stats, cache = _make_fetch_unit(uops)
    cycle = 0
    while not unit.exhausted and cycle < 500:
        unit.fetch(cycle)
        cycle += 1
    assert stats.trace_cache_misses >= 1
    assert stats.trace_cache_hits >= 1
    assert cache.hit_rate > 0.5


def test_mispredicted_branch_stalls_until_redirect():
    uops = [_alu(0x3000), _branch(0x3004, mispredicted=True)] + [
        _alu(0x3008 + 4 * i) for i in range(16)
    ]
    unit, _, stats, _ = _make_fetch_unit(uops)
    unit.fetch(0)
    resume = 12 + TraceCache.TRACE_BUILD_OVERHEAD
    fetched = unit.fetch(resume)
    # Fetch stops right after the mispredicted branch.
    assert any(u.is_branch for u in fetched)
    assert unit.fetch(resume + 1) == []
    assert stats.mispredicted_branches == 1
    unit.redirect(resume + 5)
    assert unit.fetch(resume + 4) == []
    assert len(unit.fetch(resume + 5)) > 0


def test_exhausted_after_stream_drains():
    uops = [_alu(0x4000 + 4 * i) for i in range(4)]
    unit, _, _, _ = _make_fetch_unit(uops)
    cycle = 0
    fetched_total = 0
    while not unit.exhausted and cycle < 200:
        fetched_total += len(unit.fetch(cycle))
        cycle += 1
    assert unit.exhausted
    assert fetched_total == 4


def test_activity_charged_to_decoder_and_trace_cache():
    uops = [_alu(0x5000 + 4 * i) for i in range(16)]
    unit, activity, _, _ = _make_fetch_unit(uops)
    cycle = 0
    while not unit.exhausted and cycle < 200:
        unit.fetch(cycle)
        cycle += 1
    totals = activity.total_counts()
    assert totals[blocks.DECODER] == 16
    assert totals["TC0"] + totals["TC1"] >= 1
    assert totals[blocks.ITLB] >= 1

"""Golden end-to-end regression fixtures (the fast-path equivalence lock).

Two small fixed-seed campaigns — one centralized (the paper's baseline
frontend) and one distributed + bank-hopping + biased-mapping frontend — are
digested into JSON fixtures under ``tests/golden/``.  The digests capture
everything a campaign produces: the integer timing statistics, the warm-up
temperatures, the full per-interval per-block temperature trace, the
per-interval dynamic/leakage power totals and the paper's three temperature
metrics for every block group.

The fixtures were generated with the original dict-per-block power/thermal
pipeline (before the array-backed fast path landed), so a passing run proves
the fast path is *metric-identical* to the reference implementation.  Any
drift — a solver change, a power-model tweak, an interval-accounting bug —
fails these tests.

Regenerating (only when an intentional modelling change lands)::

    PYTHONPATH=src python -m pytest tests/test_golden_metrics.py --regen

Comparison is exact by default (the fixtures round-trip through ``repr``-level
JSON floats).  On platforms whose BLAS produces different last-ulp rounding,
set ``REPRO_GOLDEN_RELTOL`` (e.g. ``1e-9``) to compare with a relative
tolerance still far below any genuine metric drift.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.campaign import Campaign, ExperimentSettings, run_campaign
from repro.core.presets import baseline_config, distributed_frontend_config
from repro.sim.results import SimulationResult

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Scale of the golden campaigns: tiny but large enough to span several
#: thermal intervals, bank hops and remap events per benchmark.
GOLDEN_SETTINGS = ExperimentSettings(
    benchmarks=("gzip", "swim"),
    uops_per_benchmark=3_000,
    seed=7,
)


def _golden_campaigns():
    """The two locked campaigns: centralized and distributed+bank-hopping."""
    return {
        "centralized": Campaign.single(
            baseline_config(), GOLDEN_SETTINGS, name="golden_centralized"
        ),
        "distributed_hopping": Campaign.single(
            distributed_frontend_config(), GOLDEN_SETTINGS, name="golden_distributed"
        ),
    }


def _digest_result(result: SimulationResult) -> dict:
    """Everything worth locking about one simulated cell, JSON-ready."""
    return {
        "stats": {
            "cycles": result.stats.cycles,
            "fetched_uops": result.stats.fetched_uops,
            "committed_uops": result.stats.committed_uops,
            "committed_copies": result.stats.committed_copies,
            "branches": result.stats.branches,
            "mispredicted_branches": result.stats.mispredicted_branches,
            "trace_cache_hits": result.stats.trace_cache_hits,
            "trace_cache_misses": result.stats.trace_cache_misses,
            "trace_cache_hop_flushes": result.stats.trace_cache_hop_flushes,
            "dcache_hits": result.stats.dcache_hits,
            "dcache_misses": result.stats.dcache_misses,
            "ul2_hits": result.stats.ul2_hits,
            "ul2_misses": result.stats.ul2_misses,
        },
        "warmup_temperature": dict(result.warmup_temperature),
        "intervals": [
            {
                "cycle": record.cycle,
                "seconds": record.seconds,
                "total_dynamic_w": sum(record.dynamic_power.values()),
                "total_leakage_w": sum(record.leakage_power.values()),
                "temperature": dict(record.temperature),
            }
            for record in result.intervals
        ],
        "metrics": result.all_temperature_metrics(),
    }


def _digest_campaign(name: str, campaign: Campaign) -> dict:
    outcome = run_campaign(campaign)
    cells = {}
    for config_name, summary in outcome.summaries.items():
        for benchmark, result in summary.results.items():
            cells[f"{config_name}/{benchmark}"] = _digest_result(result)
    return {
        "campaign": name,
        "settings": {
            "benchmarks": list(GOLDEN_SETTINGS.benchmarks),
            "uops_per_benchmark": GOLDEN_SETTINGS.uops_per_benchmark,
            "seed": GOLDEN_SETTINGS.seed,
        },
        "cells": cells,
    }


def _fixture_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def _compare(expected, actual, path: str, reltol: float) -> list:
    """Recursively diff two digests; returns human-readable mismatch lines."""
    problems = []
    if isinstance(expected, dict):
        if not isinstance(actual, dict):
            return [f"{path}: expected mapping, got {type(actual).__name__}"]
        for key in expected:
            if key not in actual:
                problems.append(f"{path}.{key}: missing")
            else:
                problems.extend(
                    _compare(expected[key], actual[key], f"{path}.{key}", reltol)
                )
        for key in actual:
            if key not in expected:
                problems.append(f"{path}.{key}: unexpected extra entry")
    elif isinstance(expected, list):
        if not isinstance(actual, list) or len(expected) != len(actual):
            problems.append(
                f"{path}: length {len(actual) if isinstance(actual, list) else '?'}"
                f" != {len(expected)}"
            )
        else:
            for i, (e, a) in enumerate(zip(expected, actual)):
                problems.extend(_compare(e, a, f"{path}[{i}]", reltol))
    elif isinstance(expected, float) or isinstance(actual, float):
        if reltol > 0:
            ok = math.isclose(expected, actual, rel_tol=reltol, abs_tol=reltol)
        else:
            ok = expected == actual
        if not ok:
            problems.append(f"{path}: {actual!r} != {expected!r}")
    elif expected != actual:
        problems.append(f"{path}: {actual!r} != {expected!r}")
    return problems


@pytest.mark.parametrize("name", sorted(_golden_campaigns()))
def test_golden_campaign_metrics(name, request):
    """Re-simulate a locked campaign and fail on any metric drift."""
    campaign = _golden_campaigns()[name]
    digest = _digest_campaign(name, campaign)
    path = _fixture_path(name)

    if request.config.getoption("--regen"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(digest, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path}")

    assert path.exists(), (
        f"golden fixture {path} is missing; regenerate with "
        f"`pytest {__file__} --regen`"
    )
    expected = json.loads(path.read_text())
    reltol = float(os.environ.get("REPRO_GOLDEN_RELTOL", "0") or 0)
    problems = _compare(expected, digest, name, reltol)
    assert not problems, (
        "golden metric drift detected (regenerate only if the modelling "
        "change is intentional):\n  " + "\n  ".join(problems[:40])
    )

"""Batched group replay: tolerance-locked equivalence with the exact path.

The batched engine (:mod:`repro.sim.group_replay`) advances whole
thermally-identical sub-groups per interval in one multi-RHS solve.  Its
contract: results match the exact per-cell replay within rtol/atol 1e-8,
while the ``"exact"`` mode — the default everywhere — stays *bit-identical*
to :meth:`PhysicsStage.replay` (and therefore to the coupled run and the
golden fixtures, which ``test_campaign_replay.py`` locks).  These tests
cover both sides of the contract across hopping (gated) traces, the
``none``-policy telemetry reconstruction, mixed thermal axes
(sub-grouping), truncated replays, chip replay groups, and the parallel and
service-pool executors; the single-cell short-circuit is asserted by
counting batch solves.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.campaign import (
    Campaign,
    ExperimentSettings,
    ParallelExecutor,
    SerialExecutor,
    run_campaign,
)
from repro.campaign.executors import (
    execute_cell_capture,
    execute_replay_group,
    resolved_replay_mode,
)
from repro.campaign.spec import RunSpec
from repro.core.presets import bank_hopping_config, baseline_config
from repro.sim.group_replay import (
    BATCHED_ATOL,
    BATCHED_RTOL,
    REPLAY_MODES,
    replay_group,
    thermal_group_key,
    validate_replay_mode,
)
from repro.thermal.solver import ThermalSolver

TOL = dict(rtol=BATCHED_RTOL, atol=BATCHED_ATOL)
APPROX = dict(rel=BATCHED_RTOL, abs=BATCHED_ATOL)


def _arr(mapping):
    return np.array(list(mapping.values()))


def _variants(base=None, count=4):
    """Physics variants spanning two axes: leakage (power section) and
    convection (thermal section) — two thermal sub-groups of ``count/2``."""
    base = base or baseline_config()
    configs = []
    for i in range(count):
        configs.append(
            dataclasses.replace(
                base,
                name=f"phys_{i}",
                power=dataclasses.replace(
                    base.power, leakage_fraction_at_ambient=0.20 + 0.04 * (i % 2)
                ),
                thermal=dataclasses.replace(
                    base.thermal,
                    convection_resistance_k_per_w=0.14 + 0.04 * (i // 2),
                ),
            )
        )
    return configs


def _capture(config, benchmark="gzip", uops=4_000, interval_cycles=800):
    from repro.campaign import scale_paper_intervals

    spec = RunSpec(
        config=scale_paper_intervals(config, interval_cycles),
        benchmark=benchmark,
        trace_uops=uops,
        interval_cycles=interval_cycles,
        seed=7,
    )
    _, trace = execute_cell_capture(spec)
    return spec, trace


@pytest.fixture(scope="module")
def captured():
    return _capture(baseline_config())


@pytest.fixture(scope="module")
def captured_hopping():
    return _capture(bank_hopping_config())


def _scaled_variants(spec, count=4):
    from repro.campaign import scale_paper_intervals

    return [
        scale_paper_intervals(v, spec.interval_cycles)
        for v in _variants(count=count)
    ]


def _assert_equivalent(batched, exact):
    for b, e in zip(batched, exact):
        assert b.config_name == e.config_name
        assert len(b.intervals) == len(e.intervals)
        for bi, ei in zip(b.intervals, e.intervals):
            assert bi.cycle == ei.cycle and bi.seconds == ei.seconds
            np.testing.assert_allclose(
                _arr(bi.temperature), _arr(ei.temperature), **TOL
            )
            np.testing.assert_allclose(
                _arr(bi.leakage_power), _arr(ei.leakage_power), **TOL
            )
            # Dynamic power never depends on temperature: byte-identical.
            np.testing.assert_array_equal(
                _arr(bi.dynamic_power), _arr(ei.dynamic_power)
            )
        # Warm-up stays on the exact per-cell fixed point: identical, not
        # merely close.
        assert b.warmup_temperature == e.warmup_temperature
        assert b.stats.cycles == e.stats.cycles
        assert b.dtm == e.dtm


class _BatchCounter:
    """Counts every batch kernel the group engine can drive.

    ``walks`` records one entry per batched sub-group walk (its cell
    width); ``advances``/``affine_builds`` count the two batch-advance
    mechanisms (the per-interval multi-RHS solve and the precomputed
    per-dt affine map).  A group that never batches must leave all three
    at zero.
    """

    def __init__(self, monkeypatch):
        self.walks = []
        self.advances = 0
        self.affine_builds = 0
        import repro.sim.group_replay as group_replay_module

        original_walk = group_replay_module.batched_interval_walk
        original_advance = ThermalSolver.advance_nodes_batch
        original_affine = ThermalSolver.interval_affine_map

        def counting_walk(solver, node_positions, states, *args, **kwargs):
            self.walks.append(states.shape[1])
            return original_walk(solver, node_positions, states, *args, **kwargs)

        def counting_advance(solver, states, node_power, dt):
            self.advances += 1
            return original_advance(solver, states, node_power, dt)

        def counting_affine(solver, dt):
            self.affine_builds += 1
            return original_affine(solver, dt)

        monkeypatch.setattr(
            group_replay_module, "batched_interval_walk", counting_walk
        )
        monkeypatch.setattr(ThermalSolver, "advance_nodes_batch", counting_advance)
        monkeypatch.setattr(ThermalSolver, "interval_affine_map", counting_affine)

    @property
    def batch_ops(self):
        return len(self.walks) + self.advances + self.affine_builds


# ----------------------------------------------------------------------
# Core equivalence
# ----------------------------------------------------------------------
def test_batched_matches_exact_within_tolerance(captured):
    spec, trace = captured
    variants = _scaled_variants(spec)
    exact = replay_group(trace, variants, spec.interval_cycles, replay_mode="exact")
    batched = replay_group(
        trace, variants, spec.interval_cycles, replay_mode="batched"
    )
    assert len(trace) >= 4
    _assert_equivalent(batched, exact)


def test_batched_matches_exact_on_hopping_traces(captured_hopping):
    """The gated (bank-hopping) schedule exercises the masked leakage path."""
    spec, trace = captured_hopping
    assert trace.gated_masks is not None
    base = bank_hopping_config()
    variants = []
    from repro.campaign import scale_paper_intervals

    for i in range(4):
        v = dataclasses.replace(
            base,
            name=f"hop_{i}",
            power=dataclasses.replace(
                base.power, leakage_fraction_at_ambient=0.22 + 0.05 * (i % 2)
            ),
            thermal=dataclasses.replace(
                base.thermal, convection_resistance_k_per_w=0.15 + 0.03 * (i // 2)
            ),
        )
        variants.append(scale_paper_intervals(v, spec.interval_cycles))
    exact = replay_group(trace, variants, spec.interval_cycles, replay_mode="exact")
    batched = replay_group(
        trace, variants, spec.interval_cycles, replay_mode="batched"
    )
    _assert_equivalent(batched, exact)
    # Gated blocks carry exactly zero power in both paths.
    for result in batched:
        for i, record in enumerate(result.intervals):
            mask = trace.gated_masks[i]
            np.testing.assert_array_equal(_arr(record.leakage_power)[mask], 0.0)
            np.testing.assert_array_equal(_arr(record.dynamic_power)[mask], 0.0)


def test_exact_mode_is_bit_identical_to_per_cell_replay(captured):
    from repro.sim.engine import PhysicsStage

    spec, trace = captured
    variants = _scaled_variants(spec)
    grouped = replay_group(trace, variants, spec.interval_cycles, replay_mode="exact")
    for config, result in zip(variants, grouped):
        solo = PhysicsStage(config, spec.interval_cycles).replay(trace)
        assert len(solo.intervals) == len(result.intervals)
        for si, gi in zip(solo.intervals, result.intervals):
            # Dict equality on floats == byte identity.
            assert si.temperature == gi.temperature
            assert si.leakage_power == gi.leakage_power
            assert si.dynamic_power == gi.dynamic_power
        assert solo.warmup_temperature == result.warmup_temperature


def test_none_policy_telemetry_matches_exact(captured):
    spec, trace = captured
    variants = _scaled_variants(spec)
    policies = ["none"] * len(variants)
    exact = replay_group(
        trace,
        variants,
        spec.interval_cycles,
        dtm_policies=policies,
        replay_mode="exact",
    )
    batched = replay_group(
        trace,
        variants,
        spec.interval_cycles,
        dtm_policies=policies,
        replay_mode="batched",
    )
    _assert_equivalent(batched, exact)
    for result in batched:
        assert result.dtm["policy"] == "none"


def test_feedback_policies_are_rejected(captured):
    spec, trace = captured
    variants = _scaled_variants(spec, count=2)
    with pytest.raises(ValueError, match="actuates on temperatures"):
        replay_group(
            trace,
            variants,
            spec.interval_cycles,
            dtm_policies=["dvfs", None],
            replay_mode="batched",
        )


def test_truncated_max_intervals(captured):
    spec, trace = captured
    variants = _scaled_variants(spec)
    for kwargs in ({"max_intervals": 2}, {"max_intervals": 3, "warmup": False}):
        exact = replay_group(
            trace, variants, spec.interval_cycles, replay_mode="exact", **kwargs
        )
        batched = replay_group(
            trace, variants, spec.interval_cycles, replay_mode="batched", **kwargs
        )
        assert len(batched[0].intervals) == kwargs["max_intervals"]
        _assert_equivalent(batched, exact)


# ----------------------------------------------------------------------
# Sub-grouping and mode routing
# ----------------------------------------------------------------------
def test_mixed_thermal_axes_subgroup_by_thermal_key(captured, monkeypatch):
    """4 cells over 2 thermal axes → exactly 2 batched sub-group walks."""
    spec, trace = captured
    variants = _scaled_variants(spec)
    from repro.power.energy import build_block_parameters

    keys = {
        thermal_group_key(
            v, {n: p.area_mm2 for n, p in build_block_parameters(v).items()}
        )
        for v in variants
    }
    assert len(keys) == 2  # leakage axis never splits a thermal sub-group

    counter = _BatchCounter(monkeypatch)
    replay_group(trace, variants, spec.interval_cycles, replay_mode="batched")
    assert counter.walks == [2, 2]  # one walk per thermal sub-group
    assert counter.affine_builds > 0 or counter.advances > 0


def test_auto_batches_only_uniform_policy_subgroups(captured, monkeypatch):
    spec, trace = captured
    variants = _scaled_variants(spec)
    counter = _BatchCounter(monkeypatch)
    # Sub-group {0,1} diverges per-cell (none vs None): exact fallback.
    # Sub-group {2,3} agrees: batched.
    results = replay_group(
        trace,
        variants,
        spec.interval_cycles,
        dtm_policies=["none", None, None, None],
        replay_mode="auto",
    )
    assert counter.walks == [2]  # only the policy-uniform sub-group batches
    exact = replay_group(trace, variants, spec.interval_cycles, replay_mode="exact")
    for r, e in zip(results, exact):
        for ri, ei in zip(r.intervals, e.intervals):
            np.testing.assert_allclose(
                _arr(ri.temperature), _arr(ei.temperature), **TOL
            )


def test_single_cell_group_performs_zero_batch_solves(captured, monkeypatch):
    """A 1-cell group short-circuits straight to the exact path."""
    spec, trace = captured
    counter = _BatchCounter(monkeypatch)
    batched_spec = dataclasses.replace(spec, replay_mode="batched")
    results = execute_replay_group((trace, [batched_spec]))
    assert counter.batch_ops == 0
    assert len(results) == 1 and results[0].provenance["replayed"] is True

    # Same short-circuit inside the engine for singleton sub-groups.
    results = replay_group(
        trace, [spec.config], spec.interval_cycles, replay_mode="batched"
    )
    assert counter.batch_ops == 0 and len(results) == 1


def test_replay_mode_validation():
    assert REPLAY_MODES == ("auto", "exact", "batched")
    for mode in REPLAY_MODES:
        assert validate_replay_mode(mode) == mode
    assert validate_replay_mode(" Batched ") == "batched"
    with pytest.raises(ValueError, match="replay_mode"):
        validate_replay_mode("fast")
    with pytest.raises(ValueError, match="replay_mode"):
        RunSpec(
            config=baseline_config(),
            benchmark="gzip",
            trace_uops=100,
            interval_cycles=800,
            seed=1,
            replay_mode="bogus",
        )
    with pytest.raises(ValueError, match="replay_mode"):
        Campaign(
            (baseline_config(),),
            ExperimentSettings.smoke(),
            replay_mode="bogus",
        )


def test_replay_mode_is_not_part_of_any_cache_key(captured):
    spec, _ = captured
    batched_spec = dataclasses.replace(spec, replay_mode="batched")
    assert spec.cache_key() == batched_spec.cache_key()
    assert spec.timing_key() == batched_spec.timing_key()
    assert "replay_mode" not in spec.provenance()


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_MODE", "batched")
    assert resolved_replay_mode("exact") == "batched"
    monkeypatch.delenv("REPRO_REPLAY_MODE")
    assert resolved_replay_mode("auto") == "auto"
    monkeypatch.setenv("REPRO_REPLAY_MODE", "bogus")
    with pytest.raises(ValueError, match="replay_mode"):
        resolved_replay_mode("exact")


# ----------------------------------------------------------------------
# Campaign / executor integration
# ----------------------------------------------------------------------
def _sweep_campaign(replay_mode, benchmarks=("gzip",), uops=2_000):
    settings = ExperimentSettings(
        benchmarks=benchmarks, uops_per_benchmark=uops, seed=7
    )
    return Campaign(
        _variants(), settings, name=f"sweep_{replay_mode}", replay_mode=replay_mode
    )


def _peaks(outcome):
    return {
        f"{variant}/{benchmark}": result.peak_temperature()
        for variant, summary in outcome.summaries.items()
        for benchmark, result in summary.results.items()
    }


def test_campaign_batched_equals_exact_end_to_end():
    exact = run_campaign(_sweep_campaign("exact"), executor=SerialExecutor())
    batched = run_campaign(_sweep_campaign("batched"), executor=SerialExecutor())
    assert batched.cells_replayed == exact.cells_replayed == 3
    expected = _peaks(exact)
    actual = _peaks(batched)
    assert expected.keys() == actual.keys()
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, **APPROX)


def test_parallel_executor_runs_batched_groups():
    exact = run_campaign(_sweep_campaign("exact"), executor=SerialExecutor())
    batched = run_campaign(
        _sweep_campaign("batched"), executor=ParallelExecutor(jobs=2)
    )
    expected, actual = _peaks(exact), _peaks(batched)
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, **APPROX)


def test_service_pool_executor_runs_batched_groups():
    from repro.service.manager import PoolBackedExecutor
    from repro.service.pool import WorkerPool

    pool = WorkerPool(workers=2, mode="thread")
    try:
        batched = run_campaign(
            _sweep_campaign("batched"), executor=PoolBackedExecutor(pool)
        )
    finally:
        pool.shutdown(drain=False)
    exact = run_campaign(_sweep_campaign("exact"), executor=SerialExecutor())
    expected, actual = _peaks(exact), _peaks(batched)
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, **APPROX)


def test_service_codec_carries_replay_mode():
    from repro.service.codec import campaign_from_payload, payload_from_options

    payload = payload_from_options(scale="smoke", replay_mode="batched")
    campaign = campaign_from_payload(payload)
    assert campaign.replay_mode == "batched"
    assert all(cell.replay_mode == "batched" for cell in campaign.cells())
    assert campaign_from_payload({"scale": "smoke"}).replay_mode == "exact"
    with pytest.raises(ValueError, match="replay_mode"):
        campaign_from_payload({"scale": "smoke", "replay_mode": "bogus"})


# ----------------------------------------------------------------------
# Chip replay groups
# ----------------------------------------------------------------------
def test_chip_batched_matches_exact(monkeypatch):
    from repro.campaign import scale_paper_intervals
    from repro.campaign.executors import execute_chip_replay_group
    from repro.chip.spec import ChipRunSpec

    interval_cycles = 800
    traces = []
    for benchmark in ("gzip", "swim"):
        _, trace = _capture(
            baseline_config(), benchmark=benchmark, uops=2_000,
            interval_cycles=interval_cycles,
        )
        traces.append(trace)
    traces = tuple(traces)

    specs = []
    for mode in ("exact", "batched"):
        specs.append(
            [
                ChipRunSpec(
                    config=scale_paper_intervals(v, interval_cycles),
                    cores=2,
                    benchmarks=("gzip", "swim"),
                    trace_uops=(2_000, 2_000),
                    interval_cycles=interval_cycles,
                    seed=7,
                    replay_mode=mode,
                )
                for v in _variants()
            ]
        )
    exact_specs, batched_specs = specs

    exact = execute_chip_replay_group((traces, exact_specs))
    counter = _BatchCounter(monkeypatch)
    batched = execute_chip_replay_group((traces, batched_specs))
    assert counter.walks and all(width >= 2 for width in counter.walks)
    for b, e in zip(batched, exact):
        assert b.config_name == e.config_name
        assert len(b.intervals) == len(e.intervals)
        for bi, ei in zip(b.intervals, e.intervals):
            assert bi.cycle == ei.cycle
            np.testing.assert_allclose(
                _arr(bi.temperature), _arr(ei.temperature), **TOL
            )
            np.testing.assert_array_equal(
                _arr(bi.dynamic_power), _arr(ei.dynamic_power)
            )
        assert b.warmup_temperature == e.warmup_temperature
        for core, metrics in e.chip["per_core"].items():
            for key, value in metrics.items():
                assert b.chip["per_core"][core][key] == pytest.approx(value, **APPROX)
        assert b.chip["policy"] == e.chip["policy"]
        assert b.stats.cycles == e.stats.cycles


def test_chip_campaign_batched_equals_exact_end_to_end():
    settings = ExperimentSettings(
        benchmarks=("gzip",), uops_per_benchmark=1_500, seed=7
    )
    outcomes = {}
    for mode in ("exact", "batched"):
        campaign = Campaign(
            _variants(),
            settings,
            name=f"chip_{mode}",
            cores=2,
            replay_mode=mode,
        )
        outcomes[mode] = run_campaign(campaign, executor=SerialExecutor())
    expected, actual = _peaks(outcomes["exact"]), _peaks(outcomes["batched"])
    assert expected.keys() == actual.keys()
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, **APPROX)


# ----------------------------------------------------------------------
# The vectorized leakage kernel
# ----------------------------------------------------------------------
def test_batched_leakage_kernel_matches_scalar_loop():
    """Property test: the np.exp batch kernel equals the bit-exact scalar
    math.exp loop within documented tolerance over random inputs."""
    from repro.power.leakage import LeakageModel, batched_leakage_kernel
    from repro.sim.config import PowerConfig

    rng = np.random.default_rng(42)
    blocks = 12
    block_names = [f"b{i}" for i in range(blocks)]
    for trial in range(25):
        fraction = float(rng.uniform(0.05, 0.8))
        coefficient = float(rng.uniform(0.005, 0.05))
        ambient = float(rng.uniform(25.0, 55.0))
        config = PowerConfig(
            leakage_fraction_at_ambient=fraction,
            leakage_temperature_coefficient=coefficient,
            ambient_celsius=ambient,
        )
        model = LeakageModel(config, block_names)
        dynamic = rng.uniform(0.0, 40.0, size=blocks)
        model.seed_nominal_power_array(dynamic)
        # Include temperatures beyond the 120 C clamp.
        temps = ambient + rng.uniform(-10.0, 140.0, size=blocks)
        gated = rng.random(blocks) < 0.25

        scalar = model.leakage_power_array(temps, gated)
        batch = model.leakage_power_batch(temps, gated)
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-12)
        np.testing.assert_array_equal(batch[gated], 0.0)

        kernel = batched_leakage_kernel(
            dynamic,  # sum/1 == dynamic
            temps,
            ambient_celsius=ambient,
            fraction_at_ambient=fraction,
            temperature_coefficient=coefficient,
        )
        np.testing.assert_allclose(
            np.where(gated, 0.0, kernel), scalar, rtol=1e-12, atol=1e-12
        )


def test_batched_leakage_kernel_broadcasts_cell_columns():
    from repro.power.leakage import batched_leakage_kernel

    cells, blocks = 3, 5
    rng = np.random.default_rng(7)
    nominal = rng.uniform(0.1, 20.0, size=(cells, blocks))
    temps = rng.uniform(40.0, 100.0, size=(cells, blocks))
    fraction = rng.uniform(0.1, 0.5, size=(cells, 1))
    coefficient = rng.uniform(0.01, 0.02, size=(cells, 1))
    ambient = rng.uniform(40.0, 50.0, size=(cells, 1))
    out = batched_leakage_kernel(
        nominal,
        temps,
        ambient_celsius=ambient,
        fraction_at_ambient=fraction,
        temperature_coefficient=coefficient,
    )
    assert out.shape == (cells, blocks)
    for c in range(cells):
        row = batched_leakage_kernel(
            nominal[c],
            temps[c],
            ambient_celsius=float(ambient[c, 0]),
            fraction_at_ambient=float(fraction[c, 0]),
            temperature_coefficient=float(coefficient[c, 0]),
        )
        np.testing.assert_array_equal(out[c], row)

"""Unit tests for the micro-op definitions."""

import pytest

from repro.isa.microops import MicroOp, OP_LATENCY, UopClass, is_memory_class
from repro.isa.registers import RegisterClass, RegisterSpace

SPACE = RegisterSpace()


def test_latency_table_covers_every_class():
    assert set(OP_LATENCY) == set(UopClass)
    assert all(latency >= 1 for latency in OP_LATENCY.values())


def test_long_latency_ops_are_slower_than_simple_ones():
    assert OP_LATENCY[UopClass.IDIV] > OP_LATENCY[UopClass.IMUL] > OP_LATENCY[UopClass.IALU]
    assert OP_LATENCY[UopClass.FPDIV] > OP_LATENCY[UopClass.FPMUL] > OP_LATENCY[UopClass.FPADD]


def test_memory_class_predicate():
    assert is_memory_class(UopClass.LOAD)
    assert is_memory_class(UopClass.STORE)
    assert not is_memory_class(UopClass.IALU)
    assert not is_memory_class(UopClass.BRANCH)


def test_memory_uops_require_an_address():
    with pytest.raises(ValueError):
        MicroOp(pc=0x100, uop_class=UopClass.LOAD, dest=SPACE.int_reg(1))
    load = MicroOp(pc=0x100, uop_class=UopClass.LOAD, dest=SPACE.int_reg(1), mem_addr=64)
    assert load.is_load and load.is_mem and not load.is_store


def test_branch_class_implies_branch_flag():
    branch = MicroOp(pc=0x200, uop_class=UopClass.BRANCH, sources=(SPACE.int_reg(0),))
    assert branch.is_branch


def test_negative_pc_rejected():
    with pytest.raises(ValueError):
        MicroOp(pc=-4, uop_class=UopClass.IALU)


def test_at_most_two_sources():
    sources = (SPACE.int_reg(0), SPACE.int_reg(1), SPACE.int_reg(2))
    with pytest.raises(ValueError):
        MicroOp(pc=0, uop_class=UopClass.IALU, sources=sources)


def test_fp_predicate_matches_class():
    fp = MicroOp(pc=0, uop_class=UopClass.FPMUL, dest=SPACE.fp_reg(0))
    intop = MicroOp(pc=0, uop_class=UopClass.IALU, dest=SPACE.int_reg(0))
    assert fp.is_fp and not intop.is_fp


def test_latency_property_matches_table():
    for uop_class in UopClass:
        kwargs = {}
        if uop_class in (UopClass.LOAD, UopClass.STORE):
            kwargs["mem_addr"] = 128
        uop = MicroOp(pc=0x40, uop_class=uop_class, **kwargs)
        assert uop.latency == OP_LATENCY[uop_class]


def test_str_contains_class_and_pc():
    uop = MicroOp(pc=0x1234, uop_class=UopClass.IALU, dest=SPACE.int_reg(2),
                  sources=(SPACE.int_reg(0),))
    text = str(uop)
    assert "ialu" in text and "1234" in text

"""Unit tests for the logical register namespace."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import LogicalRegister, RegisterClass, RegisterSpace


def test_register_space_defaults():
    space = RegisterSpace()
    assert space.num_int == RegisterSpace.DEFAULT_INT
    assert space.num_fp == RegisterSpace.DEFAULT_FP
    assert space.total == space.num_int + space.num_fp


def test_register_space_rejects_non_positive_sizes():
    with pytest.raises(ValueError):
        RegisterSpace(num_int=0)
    with pytest.raises(ValueError):
        RegisterSpace(num_fp=-1)


def test_logical_register_rejects_negative_index():
    with pytest.raises(ValueError):
        LogicalRegister(-1, RegisterClass.INT)


def test_register_class_predicates():
    space = RegisterSpace(4, 4)
    assert space.int_reg(1).is_int and not space.int_reg(1).is_fp
    assert space.fp_reg(2).is_fp and not space.fp_reg(2).is_int


def test_register_string_form():
    space = RegisterSpace(8, 8)
    assert str(space.int_reg(3)) == "r3"
    assert str(space.fp_reg(5)) == "f5"


def test_int_and_fp_indices_wrap_around():
    space = RegisterSpace(4, 4)
    assert space.int_reg(5) == space.int_reg(1)
    assert space.fp_reg(9) == space.fp_reg(1)


def test_flat_index_is_dense_and_unique():
    space = RegisterSpace(6, 5)
    indices = [space.flat_index(reg) for reg in space.all_registers()]
    assert sorted(indices) == list(range(space.total))


def test_flat_index_rejects_out_of_range_register():
    space = RegisterSpace(4, 4)
    with pytest.raises(ValueError):
        space.flat_index(LogicalRegister(7, RegisterClass.INT))
    with pytest.raises(ValueError):
        space.flat_index(LogicalRegister(4, RegisterClass.FP))


def test_all_registers_orders_int_before_fp():
    space = RegisterSpace(3, 2)
    regs = space.all_registers()
    assert all(r.is_int for r in regs[:3])
    assert all(r.is_fp for r in regs[3:])


@given(num_int=st.integers(1, 64), num_fp=st.integers(1, 64))
def test_flat_index_roundtrip_property(num_int, num_fp):
    """Every register maps to a unique flat index below the total."""
    space = RegisterSpace(num_int, num_fp)
    seen = set()
    for reg in space.all_registers():
        flat = space.flat_index(reg)
        assert 0 <= flat < space.total
        seen.add(flat)
    assert len(seen) == space.total

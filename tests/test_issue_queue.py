"""Unit tests for the issue queues."""

import pytest

from repro.backend.issue_queue import IssueQueue
from repro.backend.register_file import PhysicalRegisterFile
from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterSpace
from repro.sim.uop import DynamicUop

SPACE = RegisterSpace()


def _uop(seq, src_ready_cycles, rf):
    static = MicroOp(pc=0x100 + 4 * seq, uop_class=UopClass.IALU, dest=SPACE.int_reg(0))
    dynamic = DynamicUop(static, seq)
    for ready in src_ready_cycles:
        index = rf.allocate()
        rf.set_ready(index, ready)
        dynamic.src_refs.append((rf, index))
    return dynamic


def test_capacity_and_space_checks():
    queue = IssueQueue("IQ", 2)
    rf = PhysicalRegisterFile("IRF", 16)
    queue.insert(_uop(0, [0], rf))
    assert queue.has_space()
    queue.insert(_uop(1, [0], rf))
    assert not queue.has_space()
    with pytest.raises(RuntimeError):
        queue.insert(_uop(2, [0], rf))


def test_issue_selects_oldest_ready_entry():
    queue = IssueQueue("IQ", 8)
    rf = PhysicalRegisterFile("IRF", 16)
    late = _uop(0, [50], rf)
    early = _uop(1, [0], rf)
    queue.insert(late)
    queue.insert(early)
    issued = queue.issue(cycle=10)
    assert issued == [early]
    assert len(queue) == 1
    # Once its operand is ready, the older entry issues too.
    assert queue.issue(cycle=60) == [late]


def test_issue_width_limits_selections_per_cycle():
    queue = IssueQueue("IQ", 8, issue_width=1)
    rf = PhysicalRegisterFile("IRF", 16)
    for seq in range(4):
        queue.insert(_uop(seq, [0], rf))
    assert len(queue.issue(cycle=0)) == 1
    wide = IssueQueue("IQ", 8, issue_width=3)
    for seq in range(4):
        wide.insert(_uop(seq, [0], rf))
    assert len(wide.issue(cycle=0)) == 3


def test_issue_with_no_ready_entries_returns_empty():
    queue = IssueQueue("IQ", 4)
    rf = PhysicalRegisterFile("IRF", 16)
    queue.insert(_uop(0, [99], rf))
    assert queue.issue(cycle=0) == []
    assert queue.occupancy == 1


def test_counters_and_peek():
    queue = IssueQueue("IQ", 4)
    rf = PhysicalRegisterFile("IRF", 16)
    first = _uop(0, [0], rf)
    queue.insert(first)
    assert queue.peek_oldest() is first
    queue.issue(cycle=0)
    assert queue.inserted == 1 and queue.issued == 1
    assert queue.peek_oldest() is None


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        IssueQueue("IQ", 0)
    with pytest.raises(ValueError):
        IssueQueue("IQ", 4, issue_width=0)

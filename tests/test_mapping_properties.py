"""Property tests for the bank-mapping and hopping invariants.

The paper's thermal-aware mapping function (Section 3.2.2) reapportions the
32-entry combination table between the enabled trace-cache banks from their
sensor temperatures.  Whatever the temperature map, the policies must uphold
two invariants:

* the per-bank shares always sum to exactly the table size (every
  combination maps to exactly one bank);
* entries are only ever assigned to *enabled* banks — a Vdd-gated bank must
  receive no accesses (its contents are lost and it must not heat up).

These are exercised over randomized temperature maps, bank subsets and table
sizes (fixed seeds — the sweep is deterministic).
"""

from __future__ import annotations

import random

import pytest

from repro.core.bank_hopping import BankHoppingController
from repro.core.thermal_mapping import (
    BalancedMappingPolicy,
    BankMappingTable,
    ThermalAwareMappingPolicy,
)


def _random_cases(seed: int, cases: int):
    """Randomized (enabled_banks, temperatures, num_entries) scenarios."""
    rng = random.Random(seed)
    for _ in range(cases):
        physical = rng.randint(1, 8)
        enabled = sorted(
            rng.sample(range(physical), rng.randint(1, physical))
        )
        temperatures = {bank: 45.0 + rng.uniform(0.0, 60.0) for bank in enabled}
        # Table at least as large as the bank count so every enabled bank can
        # hold its guaranteed minimum of one entry.
        num_entries = rng.choice([n for n in (8, 16, 32, 64) if n >= len(enabled)])
        yield enabled, temperatures, num_entries


@pytest.mark.parametrize("policy_cls", [BalancedMappingPolicy, ThermalAwareMappingPolicy])
def test_shares_always_sum_to_table_size(policy_cls):
    for enabled, temperatures, num_entries in _random_cases(seed=11, cases=200):
        policy = policy_cls(num_entries)
        shares = policy.compute_shares(enabled, temperatures)
        assert sum(shares.values()) == num_entries, (
            f"{policy_cls.__name__} shares {shares} do not cover the "
            f"{num_entries}-entry table for banks {enabled}"
        )


@pytest.mark.parametrize("policy_cls", [BalancedMappingPolicy, ThermalAwareMappingPolicy])
def test_shares_never_assign_to_gated_banks(policy_cls):
    for enabled, temperatures, num_entries in _random_cases(seed=23, cases=200):
        policy = policy_cls(num_entries)
        shares = policy.compute_shares(enabled, temperatures)
        assert set(shares) <= set(enabled), (
            f"{policy_cls.__name__} assigned entries to gated banks "
            f"{set(shares) - set(enabled)}"
        )
        assert all(count >= 0 for count in shares.values())


@pytest.mark.parametrize("policy_cls", [BalancedMappingPolicy, ThermalAwareMappingPolicy])
def test_mapping_table_entries_only_point_at_enabled_banks(policy_cls):
    for enabled, temperatures, num_entries in _random_cases(seed=37, cases=100):
        policy = policy_cls(num_entries)
        table = BankMappingTable(num_entries, enabled)
        table.set_assignment(policy.compute_shares(enabled, temperatures))
        assert set(table.entries) <= set(enabled)
        per_bank = table.entries_per_bank()
        assert sum(per_bank.values()) == num_entries


def test_thermal_policy_biases_towards_colder_banks():
    policy = ThermalAwareMappingPolicy(num_entries=32, bias_threshold_celsius=3.0)
    for seed in range(20):
        rng = random.Random(seed)
        enabled = [0, 1, 2, 3]
        temperatures = {bank: 50.0 + rng.uniform(0.0, 30.0) for bank in enabled}
        shares = policy.compute_shares(enabled, temperatures)
        coldest = min(enabled, key=temperatures.get)
        hottest = max(enabled, key=temperatures.get)
        assert shares[coldest] >= shares[hottest]
        # No enabled bank is ever starved entirely.
        assert min(shares.values()) >= 1


def test_hopping_controller_gated_and_enabled_banks_partition():
    """Across every hop, gated + enabled banks partition the physical banks."""
    for static in ([], [3]):
        controller = BankHoppingController(
            physical_banks=4,
            active_banks=3,
            hop_interval_cycles=1000,
            enabled=not static,
            static_gated_banks=static,
        )
        for _ in range(10):
            gated = set(controller.gated_banks)
            enabled = set(controller.enabled_banks)
            assert gated | enabled == set(range(4))
            assert gated & enabled == set()
            assert set(static) <= gated
            if controller.enabled:
                controller.hop()

"""Unit tests for the UL2 cache and the shared buses."""

import pytest

from repro.memory.bus import Bus, BusPool
from repro.memory.ul2 import UnifiedL2Cache
from repro.sim.config import MemoryConfig


# ----------------------------------------------------------------------
# UL2
# ----------------------------------------------------------------------
def test_ul2_hit_and_miss_latencies():
    config = MemoryConfig()
    ul2 = UnifiedL2Cache(config)
    first = ul2.access(0x10_000)
    assert first == config.ul2_hit_latency + config.ul2_miss_latency
    second = ul2.access(0x10_000)
    assert second == config.ul2_hit_latency
    assert ul2.hits == 1 and ul2.misses == 1
    assert ul2.hit_rate == 0.5


def test_ul2_same_line_hits():
    config = MemoryConfig()
    ul2 = UnifiedL2Cache(config)
    ul2.access(0x2000)
    assert ul2.access(0x2000 + config.line_bytes - 1) == config.ul2_hit_latency


def test_ul2_eviction_after_associativity_exhausted():
    config = MemoryConfig(ul2_kb=64, ul2_associativity=2)
    ul2 = UnifiedL2Cache(config)
    stride = ul2.num_sets * ul2.line_bytes
    addresses = [i * stride for i in range(3)]
    for address in addresses:
        ul2.access(address)
    assert ul2.access(addresses[0]) > config.ul2_hit_latency  # was evicted


# ----------------------------------------------------------------------
# Buses
# ----------------------------------------------------------------------
def test_bus_serializes_transfers():
    bus = Bus("mem0", transfer_latency=4, arbitration_latency=1)
    first = bus.request(0)
    assert first == 5
    second = bus.request(0)
    assert second == 9  # waits for the first transfer to finish
    assert bus.transfers == 2


def test_bus_utilization_is_bounded():
    bus = Bus("mem0", 4, 1)
    for _ in range(10):
        bus.request(0)
    assert bus.utilization(1000) == pytest.approx(0.04)
    assert bus.utilization(10) == 1.0
    assert bus.utilization(0) == 0.0


def test_bus_pool_load_balances_across_buses():
    pool = BusPool("mem", count=2, transfer_latency=4, arbitration_latency=1)
    first = pool.request(0)
    second = pool.request(0)
    # Two buses: both requests start immediately instead of serializing.
    assert first == second == 5
    third = pool.request(0)
    assert third == 9
    assert pool.transfers == 3


def test_bus_validation():
    with pytest.raises(ValueError):
        Bus("x", 0, 1)
    with pytest.raises(ValueError):
        BusPool("x", 0, 4, 1)

"""Unit tests for the point-to-point inter-cluster network."""

import pytest

from repro.interconnect.p2p import PointToPointNetwork


def _network():
    return PointToPointNetwork(num_clusters=4, num_links=2, hop_latency=1)


def test_hop_counts_follow_the_paper():
    network = _network()
    assert network.hops(0, 0) == 0
    assert network.hops(0, 1) == 1
    assert network.hops(1, 3) == 2
    # Two cycles from side to side of the chip (Table 1).
    assert network.hops(0, 3) == 2


def test_local_transfer_is_free():
    network = _network()
    assert network.transfer(10, 2, 2) == 10
    assert network.transfers == 0


def test_transfer_latency_scales_with_hops():
    network = _network()
    assert network.transfer(0, 0, 1) == 1
    assert network.transfer(100, 0, 3) == 102


def test_traffic_matrix_and_average_hops():
    network = _network()
    network.transfer(0, 0, 1)
    network.transfer(0, 0, 3)
    network.transfer(0, 1, 0)
    matrix = network.traffic_matrix()
    assert matrix[(0, 1)] == 1 and matrix[(0, 3)] == 1 and matrix[(1, 0)] == 1
    assert network.average_hops == pytest.approx((1 + 2 + 1) / 3)


def test_links_are_a_shared_resource():
    network = PointToPointNetwork(num_clusters=4, num_links=1, hop_latency=1)
    first = network.transfer(0, 0, 1)
    second = network.transfer(0, 2, 3)
    assert second > first or second >= 2  # second transfer waits for the link


def test_invalid_clusters_rejected():
    network = _network()
    with pytest.raises(ValueError):
        network.hops(0, 4)
    with pytest.raises(ValueError):
        network.transfer(0, -1, 2)
    with pytest.raises(ValueError):
        PointToPointNetwork(0, 1, 1)

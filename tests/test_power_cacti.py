"""Unit tests for the analytical CACTI-like area/energy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power.cacti import (
    cam_access_energy_nj,
    cam_area_mm2,
    sram_access_energy_nj,
    sram_area_mm2,
)


def test_area_grows_with_capacity_and_ports():
    small = sram_area_mm2(16 * 1024)
    large = sram_area_mm2(64 * 1024)
    assert large > small
    assert large == pytest.approx(4 * small)
    single_port = sram_area_mm2(16 * 1024, 1, 1)
    multi_port = sram_area_mm2(16 * 1024, 4, 2)
    assert multi_port > single_port


def test_energy_grows_with_capacity_width_assoc_and_ports():
    base = sram_access_energy_nj(16 * 1024)
    assert sram_access_energy_nj(256 * 1024) > base
    assert sram_access_energy_nj(16 * 1024, access_bytes=64) > base
    assert sram_access_energy_nj(16 * 1024, associativity=8) > base
    assert sram_access_energy_nj(16 * 1024, read_ports=6, write_ports=3) > base


def test_l1_and_l2_energy_are_in_published_ranges():
    l1 = sram_access_energy_nj(16 * 1024, access_bytes=8, associativity=2,
                               read_ports=1, write_ports=1)
    l2 = sram_access_energy_nj(2 * 1024 * 1024, access_bytes=64, associativity=8)
    assert 0.05 < l1 < 0.5
    assert 1.0 < l2 < 10.0
    assert l2 > l1 * 5


def test_cam_energy_and_area_grow_with_entries():
    assert cam_access_energy_nj(96, 52) > cam_access_energy_nj(40, 52)
    assert cam_area_mm2(96, 52) > cam_area_mm2(40, 52)


def test_validation():
    with pytest.raises(ValueError):
        sram_area_mm2(0)
    with pytest.raises(ValueError):
        sram_access_energy_nj(1024, access_bytes=0)
    with pytest.raises(ValueError):
        sram_access_energy_nj(1024, associativity=0)
    with pytest.raises(ValueError):
        cam_access_energy_nj(0, 32)
    with pytest.raises(ValueError):
        cam_area_mm2(16, 0)


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(128, 4 * 1024 * 1024),
    ports=st.integers(1, 16),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
def test_energy_and_area_are_positive_and_monotone_in_capacity(capacity, ports, assoc):
    """Property: the model never returns non-positive values and doubling the
    capacity never reduces energy or area."""
    energy = sram_access_energy_nj(capacity, associativity=assoc, read_ports=ports)
    area = sram_area_mm2(capacity, read_ports=ports)
    assert energy > 0 and area > 0
    assert sram_access_energy_nj(capacity * 2, associativity=assoc, read_ports=ports) >= energy
    assert sram_area_mm2(capacity * 2, read_ports=ports) >= area

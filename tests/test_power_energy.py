"""Unit tests for the per-block area / energy parameters."""

import pytest

from repro.core.presets import (
    bank_hopping_config,
    baseline_config,
    distributed_rename_commit_config,
)
from repro.power.energy import (
    BlockPowerParameters,
    area_by_group,
    build_block_parameters,
    total_area_mm2,
)
from repro.sim import blocks


def test_every_block_has_parameters(config):
    params = build_block_parameters(config)
    assert set(params) == set(blocks.all_blocks(config))
    for name, p in params.items():
        assert p.area_mm2 > 0, name
        assert p.energy_per_access_nj > 0, name
        assert p.idle_power_w >= 0, name


def test_block_parameters_validation():
    with pytest.raises(ValueError):
        BlockPowerParameters(area_mm2=0.0, energy_per_access_nj=1.0, idle_power_w=0.0)
    with pytest.raises(ValueError):
        BlockPowerParameters(area_mm2=1.0, energy_per_access_nj=-1.0, idle_power_w=0.0)


def test_only_trace_cache_banks_are_gateable(config):
    params = build_block_parameters(config)
    gateable = {name for name, p in params.items() if p.gateable}
    assert gateable == set(blocks.trace_cache_blocks(config))


def test_frontend_area_share_is_about_a_fifth(config):
    """The paper quotes ~20% of processor area for the frontend."""
    params = build_block_parameters(config)
    groups = area_by_group(config, params)
    share = groups["Frontend"] / groups["Processor"]
    assert 0.10 < share < 0.35
    assert groups["Processor"] == pytest.approx(total_area_mm2(params))


def test_ul2_is_the_largest_single_block(config):
    params = build_block_parameters(config)
    largest = max(params, key=lambda name: params[name].area_mm2)
    assert largest == blocks.UL2


def test_distributed_partitions_are_cheaper_per_access_but_cost_area():
    baseline = build_block_parameters(baseline_config())
    distributed = build_block_parameters(distributed_rename_commit_config())
    # Each partition's access costs less than half the monolithic access
    # (Section 4.1: "each access consumes less than half the energy").
    assert distributed["ROB0"].energy_per_access_nj < 0.55 * baseline["ROB"].energy_per_access_nj
    assert distributed["RAT0"].energy_per_access_nj < 0.55 * baseline["RAT"].energy_per_access_nj
    # Both partitions together occupy more area than the monolithic block
    # (the paper charges ~3% of processor area for the distribution).
    rob_area = distributed["ROB0"].area_mm2 + distributed["ROB1"].area_mm2
    assert rob_area > baseline["ROB"].area_mm2
    overhead = (
        total_area_mm2(distributed) - total_area_mm2(baseline)
    ) / total_area_mm2(baseline)
    assert 0.0 < overhead < 0.08


def test_bank_hopping_extra_bank_increases_trace_cache_area_not_bank_size():
    baseline = build_block_parameters(baseline_config())
    hopping = build_block_parameters(bank_hopping_config())
    assert hopping["TC0"].area_mm2 == pytest.approx(baseline["TC0"].area_mm2)
    baseline_tc_area = sum(p.area_mm2 for n, p in baseline.items() if n.startswith("TC"))
    hopping_tc_area = sum(p.area_mm2 for n, p in hopping.items() if n.startswith("TC"))
    assert hopping_tc_area == pytest.approx(1.5 * baseline_tc_area)


def test_partition_parameters_identical_across_partitions():
    params = build_block_parameters(distributed_rename_commit_config())
    assert params["ROB0"] == params["ROB1"]
    assert params["RAT0"] == params["RAT1"]


def test_fp_register_file_access_costs_more_than_dtlb(config):
    params = build_block_parameters(config)
    assert params["C0_FPRF"].energy_per_access_nj > params["C0_DTLB"].energy_per_access_nj

"""Unit tests for the leakage model and the activity-based power model."""

import math

import pytest

from repro.power.energy import BlockPowerParameters
from repro.power.leakage import LeakageModel
from repro.power.power_model import PowerModel
from repro.sim.config import PowerConfig


def _params():
    return {
        "HOT": BlockPowerParameters(area_mm2=2.0, energy_per_access_nj=0.5, idle_power_w=0.2),
        "COLD": BlockPowerParameters(area_mm2=4.0, energy_per_access_nj=0.1, idle_power_w=0.1,
                                     gateable=True),
    }


# ----------------------------------------------------------------------
# Leakage
# ----------------------------------------------------------------------
def test_leakage_fraction_at_ambient_matches_config():
    config = PowerConfig()
    model = LeakageModel(config, ["A"])
    assert model.leakage_factor(config.ambient_celsius) == pytest.approx(
        config.leakage_fraction_at_ambient
    )


def test_leakage_grows_exponentially_with_temperature():
    config = PowerConfig()
    model = LeakageModel(config, ["A"])
    low = model.leakage_factor(60.0)
    high = model.leakage_factor(100.0)
    expected_ratio = math.exp(config.leakage_temperature_coefficient * 40.0)
    assert high / low == pytest.approx(expected_ratio)


def test_leakage_factor_is_clamped_against_runaway():
    config = PowerConfig()
    model = LeakageModel(config, ["A"])
    assert model.leakage_factor(1e6) == model.leakage_factor(
        config.ambient_celsius + LeakageModel.MAX_DELTA_CELSIUS
    )


def test_leakage_uses_running_average_dynamic_power():
    config = PowerConfig()
    model = LeakageModel(config, ["A"])
    model.observe_dynamic_power({"A": 10.0})
    model.observe_dynamic_power({"A": 20.0})
    assert model.nominal_dynamic_power("A") == pytest.approx(15.0)
    leakage = model.leakage_power({"A": config.ambient_celsius})
    assert leakage["A"] == pytest.approx(15.0 * config.leakage_fraction_at_ambient)


def test_gated_blocks_do_not_leak():
    config = PowerConfig()
    model = LeakageModel(config, ["A", "B"])
    model.seed_nominal_power({"A": 10.0, "B": 10.0})
    leakage = model.leakage_power({"A": 80.0, "B": 80.0}, gated_blocks=["B"])
    assert leakage["B"] == 0.0 and leakage["A"] > 0.0


# ----------------------------------------------------------------------
# Power model
# ----------------------------------------------------------------------
def test_dynamic_power_scales_with_activity_and_frequency():
    config = PowerConfig()
    model = PowerModel(config, _params())
    power = model.dynamic_power({"HOT": 1000, "COLD": 0}, cycles=1000)
    # 1 access/cycle at 0.5 nJ and 10 GHz = 5 W switching + 0.2 W idle.
    assert power["HOT"] == pytest.approx(5.2)
    assert power["COLD"] == pytest.approx(0.1)  # idle only


def test_gated_blocks_dissipate_nothing():
    model = PowerModel(PowerConfig(), _params())
    power = model.dynamic_power({"HOT": 10, "COLD": 10}, cycles=10, gated_blocks=["COLD"])
    assert power["COLD"] == 0.0


def test_compute_returns_breakdown_with_leakage():
    config = PowerConfig()
    model = PowerModel(config, _params())
    breakdown = model.compute({"HOT": 500, "COLD": 100}, cycles=1000,
                              temperatures={"HOT": 80.0, "COLD": 60.0})
    assert breakdown.total() == pytest.approx(
        breakdown.total_dynamic() + breakdown.total_leakage()
    )
    per_block = breakdown.per_block_total()
    assert per_block["HOT"] > per_block["COLD"]
    assert breakdown.leakage["HOT"] > breakdown.leakage["COLD"]


def test_nominal_power_seeds_the_leakage_model():
    config = PowerConfig()
    model = PowerModel(config, _params())
    nominal = model.nominal_power({"HOT": 1000, "COLD": 0}, cycles=1000)
    # Nominal = dynamic + ambient leakage.
    assert nominal["HOT"] == pytest.approx(5.2 * (1 + config.leakage_fraction_at_ambient))
    assert model.leakage_model.nominal_dynamic_power("HOT") == pytest.approx(5.2)


def test_cycles_must_be_positive():
    model = PowerModel(PowerConfig(), _params())
    with pytest.raises(ValueError):
        model.dynamic_power({"HOT": 1}, cycles=0)

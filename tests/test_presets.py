"""Unit tests for the configuration presets of the evaluated configurations."""

import pytest

from repro.core.presets import (
    ALL_CONFIGURATIONS,
    FrontendOrganization,
    address_biasing_config,
    bank_hopping_biasing_config,
    bank_hopping_config,
    baseline_config,
    blank_silicon_config,
    config_for,
    distributed_frontend_config,
    distributed_rename_commit_config,
)


def test_every_organization_has_a_builder():
    assert set(ALL_CONFIGURATIONS) == set(FrontendOrganization)
    for organization in FrontendOrganization:
        config = config_for(organization)
        assert config.name == organization.value


def test_config_for_rejects_unknown_values():
    with pytest.raises(KeyError):
        config_for("not-an-organization")


def test_baseline_is_monolithic_two_banked():
    config = baseline_config()
    assert config.frontend.num_frontends == 1
    tc = config.frontend.trace_cache
    assert tc.physical_banks == 2 and tc.active_banks == 2
    assert not tc.bank_hopping and not tc.thermal_aware_mapping and not tc.blank_silicon


def test_distributed_rename_commit_splits_the_frontend():
    config = distributed_rename_commit_config()
    assert config.frontend.num_frontends == 2
    assert config.frontend.is_distributed
    # The trace cache is untouched by this technique.
    assert config.frontend.trace_cache == baseline_config().frontend.trace_cache
    four = distributed_rename_commit_config(num_frontends=4)
    assert four.frontend.num_frontends == 4


def test_address_biasing_only_changes_the_mapping_function():
    config = address_biasing_config()
    tc = config.frontend.trace_cache
    assert tc.thermal_aware_mapping
    assert tc.physical_banks == 2 and not tc.bank_hopping
    assert config.frontend.num_frontends == 1


def test_blank_silicon_adds_a_statically_gated_bank():
    tc = blank_silicon_config().frontend.trace_cache
    assert tc.physical_banks == 3 and tc.active_banks == 2
    assert tc.blank_silicon and not tc.bank_hopping


def test_bank_hopping_adds_an_extra_bank():
    tc = bank_hopping_config().frontend.trace_cache
    assert tc.physical_banks == 3 and tc.active_banks == 2
    assert tc.bank_hopping and not tc.thermal_aware_mapping


def test_hopping_plus_biasing_combines_both():
    tc = bank_hopping_biasing_config().frontend.trace_cache
    assert tc.bank_hopping and tc.thermal_aware_mapping


def test_distributed_frontend_combines_all_techniques():
    config = distributed_frontend_config()
    assert config.frontend.num_frontends == 2
    tc = config.frontend.trace_cache
    assert tc.bank_hopping and tc.thermal_aware_mapping and tc.physical_banks == 3


def test_presets_share_the_backend_and_memory_hierarchy():
    baseline = baseline_config()
    for organization in FrontendOrganization:
        config = config_for(organization)
        assert config.backend == baseline.backend
        assert config.memory == baseline.memory
        assert config.interconnect == baseline.interconnect

"""Integration tests of the cycle-level processor pipeline."""

import pytest

from repro.core.presets import (
    baseline_config,
    distributed_frontend_config,
    distributed_rename_commit_config,
)
from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterSpace
from repro.sim.processor import Processor
from repro.sim.uop import UopState
from repro.workloads.generator import TraceGenerator

SPACE = RegisterSpace()


def _run(config, uops):
    processor = Processor(config, iter(uops))
    processor.run()
    return processor


def _simple_program(n=64):
    uops = []
    for i in range(n):
        uops.append(
            MicroOp(pc=0x1000 + 4 * i, uop_class=UopClass.IALU,
                    dest=SPACE.int_reg(i % 8), sources=(SPACE.int_reg((i + 1) % 8),))
        )
    return uops


def test_every_fetched_uop_commits(small_trace):
    processor = _run(baseline_config(), list(small_trace))
    assert processor.finished
    assert processor.stats.committed_uops == len(small_trace)
    assert processor.stats.fetched_uops == len(small_trace)
    assert processor.stats.cycles > 0


def test_simple_dependent_chain_completes():
    processor = _run(baseline_config(), _simple_program())
    assert processor.stats.committed_uops == 64
    # With an 8-deep logical register rotation the chain has ILP, so the run
    # should not take absurdly long.
    assert processor.stats.cycles < 2000


def test_ipc_is_physical(small_trace):
    processor = _run(baseline_config(), list(small_trace))
    assert 0.05 < processor.stats.ipc <= 8.0


def test_copies_are_generated_and_complete(small_trace):
    processor = _run(baseline_config(), list(small_trace))
    assert processor.stats.copy_uops_generated > 0
    assert processor.stats.committed_copies == processor.stats.copy_uops_generated


def test_activity_counters_track_committed_work(small_trace):
    processor = _run(baseline_config(), list(small_trace))
    totals = processor.activity.total_counts()
    # The decoder/steering block sees at least one access per fetched
    # micro-op (decode) plus the availability-table and freelist lookups.
    assert totals["DECO"] >= processor.stats.fetched_uops
    # The monolithic ROB sees one allocation and one commit read per uop.
    assert totals["ROB"] == 2 * processor.stats.committed_uops
    # Register files, schedulers and FUs saw activity.
    assert sum(totals[f"C{c}_IRF"] for c in range(4)) > 0
    assert sum(totals[f"C{c}_IS"] for c in range(4)) > 0
    assert sum(totals[f"C{c}_IFU"] for c in range(4)) > 0


def test_distributed_configuration_commits_everything(small_trace):
    processor = _run(distributed_rename_commit_config(), list(small_trace))
    assert processor.finished
    assert processor.stats.committed_uops == len(small_trace)
    totals = processor.activity.total_counts()
    assert totals["ROB0"] + totals["ROB1"] == 2 * processor.stats.committed_uops
    assert totals["RAT0"] > 0 and totals["RAT1"] > 0
    assert processor.stats.copy_requests_between_frontends > 0


def test_distributed_and_baseline_commit_the_same_program(small_trace):
    base = _run(baseline_config(), list(small_trace))
    dist = _run(distributed_rename_commit_config(), list(small_trace))
    assert base.stats.committed_uops == dist.stats.committed_uops
    # The distributed frontend costs at most a few percent of execution time
    # either way (commit latency, copy requests) — it must not change the
    # execution time dramatically.
    assert abs(dist.stats.cycles - base.stats.cycles) / base.stats.cycles < 0.15


def test_full_distributed_frontend_runs(fp_trace):
    processor = _run(distributed_frontend_config(), list(fp_trace))
    assert processor.finished
    assert processor.stats.committed_uops == len(fp_trace)
    # FP work reaches the FP datapath.
    totals = processor.activity.total_counts()
    assert sum(totals[f"C{c}_FPFU"] for c in range(4)) > 0


def test_steering_spreads_work_across_clusters(small_trace):
    processor = _run(baseline_config(), list(small_trace))
    balance = processor.stats.cluster_balance()
    assert len(balance) == 4
    assert max(balance.values()) < 0.8  # no single cluster takes everything


def test_loads_and_stores_access_the_memory_hierarchy(small_trace):
    processor = _run(baseline_config(), list(small_trace))
    stats = processor.stats
    assert stats.dcache_hits + stats.dcache_misses > 0
    totals = processor.activity.total_counts()
    assert sum(totals[f"C{c}_MOB"] for c in range(4)) > 0
    assert sum(totals[f"C{c}_DL1"] for c in range(4)) > 0


def test_mispredicted_branches_cost_fetch_stall_cycles():
    generator = TraceGenerator("twolf", seed=3)  # high misprediction rate
    processor = _run(baseline_config(), generator.generate(1500).uops)
    assert processor.stats.mispredicted_branches > 0
    assert processor.stats.fetch_stall_cycles > 0


def test_run_with_cycle_limit_stops_early(small_trace):
    processor = Processor(baseline_config(), iter(list(small_trace)))
    processor.run(max_cycles=50)
    assert processor.cycle <= 50
    assert not processor.finished


def test_run_cycles_resumes_and_finishes(small_trace):
    processor = Processor(baseline_config(), iter(list(small_trace)))
    finished = processor.run_cycles(100)
    assert not finished
    while not processor.run_cycles(500):
        pass
    assert processor.stats.committed_uops == len(small_trace)


def test_describe_state_mentions_progress(small_trace):
    processor = Processor(baseline_config(), iter(list(small_trace)))
    processor.run_cycles(60)
    text = processor.describe_state()
    assert "cycle" in text and "committed" in text

"""Unit tests for the physical register file."""

import pytest

from repro.backend.register_file import PhysicalRegisterFile, RegisterFileFullError


def test_allocate_and_free_cycle():
    rf = PhysicalRegisterFile("IRF", 4)
    indices = [rf.allocate() for _ in range(4)]
    assert sorted(indices) == [0, 1, 2, 3]
    assert rf.free_count == 0 and rf.allocated_count == 4
    with pytest.raises(RegisterFileFullError):
        rf.allocate()
    rf.free(indices[0])
    assert rf.free_count == 1
    assert rf.allocate() == indices[0]


def test_freeing_unallocated_register_is_an_error():
    rf = PhysicalRegisterFile("IRF", 4)
    with pytest.raises(ValueError):
        rf.free(1)
    with pytest.raises(IndexError):
        rf.free(9)


def test_newly_allocated_register_is_not_ready():
    rf = PhysicalRegisterFile("IRF", 8)
    index = rf.allocate()
    assert not rf.is_ready(index, cycle=10_000)
    rf.set_ready(index, 42)
    assert not rf.is_ready(index, 41)
    assert rf.is_ready(index, 42)
    assert rf.ready_cycle(index) == 42


def test_set_ready_requires_allocation():
    rf = PhysicalRegisterFile("IRF", 8)
    with pytest.raises(ValueError):
        rf.set_ready(3, 10)


def test_can_allocate_counts():
    rf = PhysicalRegisterFile("IRF", 3)
    assert rf.can_allocate(3)
    rf.allocate()
    assert rf.can_allocate(2)
    assert not rf.can_allocate(3)


def test_write_counter_tracks_set_ready():
    rf = PhysicalRegisterFile("IRF", 4)
    index = rf.allocate()
    rf.set_ready(index, 1)
    rf.record_read(2)
    assert rf.writes == 1
    assert rf.reads == 2


def test_requires_positive_capacity():
    with pytest.raises(ValueError):
        PhysicalRegisterFile("IRF", 0)

"""Unit tests for the centralized rename unit and the steering unit."""

import pytest

from repro.backend.cluster import Cluster
from repro.frontend.rename import CentralizedRenameUnit
from repro.frontend.steering import SteeringUnit
from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterSpace
from repro.sim import blocks
from repro.sim.config import ProcessorConfig, SteeringPolicy
from repro.sim.stats import ActivityCounters, SimulationStats
from repro.sim.uop import DynamicUop, UopState

SPACE = RegisterSpace()


def _machinery(config=None):
    config = config or ProcessorConfig.baseline()
    clusters = [Cluster(c, config.backend, config.memory) for c in range(config.backend.num_clusters)]
    activity = ActivityCounters(blocks.all_blocks(config))
    stats = SimulationStats()
    rename = CentralizedRenameUnit(config, clusters, SPACE, activity, stats)
    steering = SteeringUnit(config, clusters, rename.tables, SPACE)
    return config, clusters, rename, steering, activity, stats


def _alu(dest, sources, pc=0x100):
    return MicroOp(pc=pc, uop_class=UopClass.IALU, dest=dest, sources=tuple(sources))


_SEQ = iter(range(100000))


def _rename(rename_unit, static, cluster, cycle=0):
    dynamic = DynamicUop(static, next(_SEQ))
    return rename_unit.rename(dynamic, cluster, cycle, lambda: next(_SEQ))


def test_rename_allocates_destination_in_target_cluster():
    _, clusters, rename, _, _, _ = _machinery()
    outcome = _rename(rename, _alu(SPACE.int_reg(1), [SPACE.int_reg(0)]), cluster=2)
    regfile, index = outcome.uop.dest_ref
    assert regfile is clusters[2].int_rf
    assert regfile.is_allocated(index)
    assert outcome.uop.state is UopState.RENAMED
    assert outcome.copies == []


def test_local_source_reuses_existing_mapping_without_copy():
    _, clusters, rename, _, _, stats = _machinery()
    producer = _rename(rename, _alu(SPACE.int_reg(1), []), cluster=1)
    consumer = _rename(rename, _alu(SPACE.int_reg(2), [SPACE.int_reg(1)]), cluster=1)
    assert consumer.copies == []
    assert consumer.uop.src_refs == [producer.uop.dest_ref]
    assert stats.copy_uops_generated == 0


def test_remote_source_generates_copy_into_consumer_cluster():
    config, clusters, rename, _, _, stats = _machinery()
    producer = _rename(rename, _alu(SPACE.int_reg(1), []), cluster=0)
    consumer = _rename(rename, _alu(SPACE.int_reg(2), [SPACE.int_reg(1)]), cluster=3)
    assert len(consumer.copies) == 1
    copy = consumer.copies[0]
    assert copy.is_copy
    assert copy.cluster == 0                      # executes at the producer
    assert copy.copy_dest_cluster == 3            # delivers to the consumer
    assert copy.src_refs == [producer.uop.dest_ref]
    dest_regfile, _ = copy.dest_ref
    assert dest_regfile is clusters[3].int_rf
    # The consumer reads the copy's destination register.
    assert consumer.uop.src_refs == [copy.dest_ref]
    assert stats.copy_uops_generated == 1
    # In the monolithic frontend no copy request crosses frontends.
    assert stats.copy_requests_between_frontends == 0


def test_second_consumer_in_same_cluster_reuses_the_copy():
    _, _, rename, _, _, stats = _machinery()
    _rename(rename, _alu(SPACE.int_reg(1), []), cluster=0)
    first = _rename(rename, _alu(SPACE.int_reg(2), [SPACE.int_reg(1)]), cluster=3)
    second = _rename(rename, _alu(SPACE.int_reg(3), [SPACE.int_reg(1)]), cluster=3)
    assert len(first.copies) == 1
    assert second.copies == []
    assert stats.copy_uops_generated == 1


def test_cold_architectural_source_needs_no_copy():
    _, _, rename, _, _, _ = _machinery()
    outcome = _rename(rename, _alu(SPACE.int_reg(5), [SPACE.int_reg(4)]), cluster=0)
    assert outcome.copies == []
    assert outcome.uop.src_refs == []


def test_new_writer_snapshots_previous_mappings_and_release_frees_them():
    _, clusters, rename, _, _, _ = _machinery()
    first = _rename(rename, _alu(SPACE.int_reg(1), []), cluster=0)
    second = _rename(rename, _alu(SPACE.int_reg(1), []), cluster=1)
    assert first.uop.dest_ref in second.uop.prev_mappings
    regfile, index = first.uop.dest_ref
    rename.release_at_commit(second.uop)
    assert not regfile.is_allocated(index)
    assert second.uop.prev_mappings == []


def test_rat_activity_charged_to_monolithic_rat_block():
    _, _, rename, _, activity, _ = _machinery()
    _rename(rename, _alu(SPACE.int_reg(1), [SPACE.int_reg(0)]), cluster=0)
    assert activity.total_counts()[blocks.RAT] >= 2  # one read + one write


def test_can_rename_reflects_freelist_exhaustion():
    config, clusters, rename, _, _, _ = _machinery()
    uop = _alu(SPACE.int_reg(1), [SPACE.int_reg(0)])
    # One integer register is needed for the destination and one for a
    # potential copy target of the single source; a single free register is
    # therefore not enough.
    while clusters[0].int_rf.free_count > 1:
        clusters[0].int_rf.allocate()
    assert not rename.can_rename(uop, 0)
    assert rename.can_rename(uop, 1)


def test_live_mappings_counts_clusters():
    _, _, rename, _, _, _ = _machinery()
    _rename(rename, _alu(SPACE.int_reg(1), []), cluster=0)
    _rename(rename, _alu(SPACE.int_reg(2), []), cluster=2)
    live = rename.live_mappings()
    assert live[0] == 1 and live[2] == 1 and live[1] == 0


# ----------------------------------------------------------------------
# Steering
# ----------------------------------------------------------------------
def test_dependence_steering_follows_the_producer():
    _, clusters, rename, steering, _, _ = _machinery()
    _rename(rename, _alu(SPACE.int_reg(1), []), cluster=2)
    decision = steering.choose(_alu(SPACE.int_reg(2), [SPACE.int_reg(1)]))
    assert decision.cluster == 2
    assert decision.local_sources == 1 and decision.remote_sources == 0


def test_dependence_steering_balances_load_when_no_dependences():
    _, clusters, _, steering, _, _ = _machinery()
    clusters[0].in_flight = 50
    clusters[1].in_flight = 3
    clusters[2].in_flight = 40
    clusters[3].in_flight = 45
    decision = steering.choose(_alu(SPACE.int_reg(9), []))
    assert decision.cluster == 1


def test_round_robin_policy_cycles_through_clusters():
    import dataclasses
    config = dataclasses.replace(ProcessorConfig.baseline(), steering_policy=SteeringPolicy.ROUND_ROBIN)
    _, _, rename, steering, _, _ = _machinery(config)
    picks = [steering.choose(_alu(SPACE.int_reg(1), [])).cluster for _ in range(8)]
    assert picks == [0, 1, 2, 3, 0, 1, 2, 3]


def test_load_balance_policy_picks_least_loaded():
    import dataclasses
    config = dataclasses.replace(ProcessorConfig.baseline(), steering_policy=SteeringPolicy.LOAD_BALANCE)
    _, clusters, rename, steering, _, _ = _machinery(config)
    clusters[0].in_flight = 10
    clusters[3].in_flight = 1
    clusters[1].in_flight = 5
    clusters[2].in_flight = 7
    assert steering.choose(_alu(SPACE.int_reg(1), [])).cluster == 3

"""The scenario library: registry integrity and end-to-end usability."""

from __future__ import annotations

import pytest

from repro.campaign import Campaign, ExperimentSettings, run_campaign
from repro.core.presets import baseline_config
from repro.scenarios import SCENARIO_NAMES, SCENARIOS, get_scenario
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import SPEC2000_PROFILES, get_profile


def test_library_has_the_advertised_breadth():
    assert len(SCENARIOS) >= 10
    for scenario in SCENARIOS.values():
        assert scenario.title and scenario.stresses
        assert scenario.profile.name == scenario.name


def test_scenario_names_do_not_shadow_spec_benchmarks():
    assert not set(SCENARIO_NAMES) & set(SPEC2000_PROFILES)


def test_get_profile_resolves_scenarios_and_reports_both_namespaces():
    profile = get_profile("thermal_virus")
    assert profile is SCENARIOS["thermal_virus"].profile
    with pytest.raises(KeyError, match="thermal_virus"):
        # The error message advertises scenario names next to benchmarks.
        get_profile("not_a_workload")


def test_get_scenario_rejects_unknown_names():
    assert get_scenario("hot_loop").name == "hot_loop"
    with pytest.raises(KeyError, match="valid names"):
        get_scenario("warp_loop")


def test_scenario_traces_are_deterministic():
    a = TraceGenerator("phase_alternating", seed=11).generate(2_000)
    b = TraceGenerator("phase_alternating", seed=11).generate(2_000)
    assert [u.pc for u in a.uops] == [u.pc for u in b.uops]
    assert [u.uop_class for u in a.uops] == [u.uop_class for u in b.uops]


def test_experiment_settings_accept_scenario_names():
    settings = ExperimentSettings(
        benchmarks=("hot_loop", "gzip"), uops_per_benchmark=1_500
    )
    assert settings.trace_length("hot_loop") == 1_500


def test_scenarios_simulate_through_the_campaign_layer():
    """A mixed benchmark/scenario campaign runs end to end."""
    settings = ExperimentSettings(
        benchmarks=("hot_loop", "memory_bound"),
        uops_per_benchmark=1_500,
        honor_relative_length=False,
    )
    outcome = run_campaign(Campaign.single(baseline_config(), settings, name="scn"))
    results = outcome.summaries["baseline"].results
    assert set(results) == {"hot_loop", "memory_bound"}
    for result in results.values():
        assert result.stats.committed_uops == 1_500
        assert result.intervals
    # The scenarios behave as designed: the latency-bound crawl commits
    # far fewer micro-ops per cycle than the trace-cache-resident loop.
    assert (
        results["memory_bound"].stats.ipc < results["hot_loop"].stats.ipc
    )

"""Unit tests for JSON serialization of simulation results."""

import dataclasses
import json

import pytest

from repro.core.presets import baseline_config
from repro.sim.engine import SimulationEngine
from repro.sim.serialization import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.workloads.generator import TraceGenerator


@pytest.fixture(scope="module")
def simulated_result():
    config = baseline_config().with_intervals(400)
    trace = TraceGenerator("gzip", seed=4).generate(2000)
    engine = SimulationEngine(config, trace.uops, "gzip", interval_cycles=400)
    return engine.run()


def test_roundtrip_preserves_metrics(simulated_result, tmp_path):
    path = save_result(simulated_result, tmp_path / "runs" / "gzip.json")
    assert path.exists()
    loaded = load_result(path)
    assert loaded.benchmark == simulated_result.benchmark
    assert loaded.config_name == simulated_result.config_name
    assert loaded.stats.cycles == simulated_result.stats.cycles
    assert loaded.stats.committed_uops == simulated_result.stats.committed_uops
    assert len(loaded.intervals) == len(simulated_result.intervals)
    for group in ("Frontend", "TraceCache", "RenameTable"):
        original = simulated_result.temperature_metrics(group)
        restored = loaded.temperature_metrics(group)
        for metric, value in original.items():
            assert restored[metric] == pytest.approx(value)
    assert loaded.average_power() == pytest.approx(simulated_result.average_power())


def test_serialized_form_is_plain_json(simulated_result, tmp_path):
    path = save_result(simulated_result, tmp_path / "result.json")
    data = json.loads(path.read_text())
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["benchmark"] == "gzip"
    assert isinstance(data["intervals"], list)


def test_dict_roundtrip_without_filesystem(simulated_result):
    restored = result_from_dict(result_to_dict(simulated_result))
    assert restored.stats.ipc == pytest.approx(simulated_result.stats.ipc)
    assert restored.block_names == list(simulated_result.block_names)


def test_unsupported_schema_version_rejected(simulated_result):
    data = result_to_dict(simulated_result)
    data["schema_version"] = 999
    with pytest.raises(ValueError):
        result_from_dict(data)


def test_dispatched_per_cluster_keys_restored_as_ints(simulated_result):
    restored = result_from_dict(result_to_dict(simulated_result))
    assert all(isinstance(k, int) for k in restored.stats.dispatched_per_cluster)


def test_schema_v2_records_interval_provenance(simulated_result):
    """The engine stamps the interval the run was simulated at (since schema v2)."""
    assert SCHEMA_VERSION >= 2
    data = result_to_dict(simulated_result)
    assert data["provenance"]["interval_cycles"] == 400
    restored = result_from_dict(data)
    assert restored.provenance == simulated_result.provenance


def test_schema_v3_round_trips_dtm_telemetry(simulated_result):
    """Schema v3 persists the DTM telemetry mapping; v2 files load without it."""
    assert SCHEMA_VERSION >= 3
    telemetry = {"policy": "dvfs:target=82", "throttle_ratio": 0.25}
    # Copy rather than mutate: the fixture is module-scoped.
    managed = dataclasses.replace(simulated_result, dtm=telemetry)
    data = result_to_dict(managed)
    restored = result_from_dict(data)
    assert restored.dtm == telemetry
    # A pre-DTM (schema v2) file loads with empty telemetry.
    data["schema_version"] = 2
    del data["dtm"]
    assert result_from_dict(data).dtm == {}


def test_schema_v1_files_still_load_without_provenance(simulated_result):
    """Backward compatibility: pre-provenance files load with empty provenance."""
    assert 1 in SUPPORTED_SCHEMA_VERSIONS
    data = result_to_dict(simulated_result)
    data["schema_version"] = 1
    del data["provenance"]
    restored = result_from_dict(data)
    assert restored.provenance == {}
    assert restored.stats.cycles == simulated_result.stats.cycles
    for metric, value in simulated_result.temperature_metrics("Frontend").items():
        assert restored.temperature_metrics("Frontend")[metric] == pytest.approx(value)

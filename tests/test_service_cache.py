"""Tests of the multi-tenant sharded result cache: shard layout, legacy
adoption, LRU budget eviction, tenant accounting and concurrent-writer
safety (atomic rename, last-writer-wins, no torn reads)."""

import json
import multiprocessing
import os

import pytest

from repro.campaign import Campaign, ExperimentSettings, ResultCache, execute_cell
from repro.core.presets import baseline_config
from repro.service.cache import ShardedResultCache
from repro.sim.serialization import result_to_dict


@pytest.fixture(scope="module")
def cells():
    settings = ExperimentSettings(
        benchmarks=("gzip", "swim", "mcf"), uops_per_benchmark=1_000
    )
    return Campaign.single(baseline_config(), settings).cells()


@pytest.fixture(scope="module")
def simulated(cells):
    return [execute_cell(cell) for cell in cells]


def test_entries_land_in_shard_directories(tmp_path, cells, simulated):
    cache = ShardedResultCache(tmp_path / "cache", shards=4)
    for cell, result in zip(cells, simulated):
        path = cache.store(cell, result)
        assert path.parent.name == cache.shard_name(cell.cache_key())
        assert path.parent.parent == cache.directory
    assert len(cache) == len(cells)
    for cell in cells:
        assert cache.load(cell) is not None
    assert cache.hits == len(cells)


def test_shard_name_is_stable_and_bounded(tmp_path):
    cache = ShardedResultCache(tmp_path / "cache", shards=8)
    names = {cache.shard_name(f"{n:064x}") for n in range(1000)}
    assert names <= {f"shard-{i:02d}" for i in range(8)}
    assert cache.shard_name("ab" * 32) == cache.shard_name("ab" * 32)


def test_legacy_root_entries_are_adopted(tmp_path, cells, simulated):
    # A pre-sharding cache wrote entries into the directory root.
    flat = ResultCache(tmp_path / "cache")
    flat.store(cells[0], simulated[0])
    assert (tmp_path / "cache" / flat.path_for(cells[0]).name).exists()

    cache = ShardedResultCache(tmp_path / "cache", shards=4)
    assert cache.load(cells[0]) is not None  # hit via adoption, not a miss
    assert cache.hits == 1
    sharded = cache.path_for(cells[0])
    assert sharded.exists()
    assert not (tmp_path / "cache" / sharded.name).exists()


def test_traces_shard_too(tmp_path, cells):
    from repro.campaign.executors import execute_cell_capture

    cache = ShardedResultCache(tmp_path / "cache", shards=4)
    _, trace = execute_cell_capture(cells[0])
    key = cells[0].timing_key()
    path = cache.store_trace(key, trace)
    assert path.parent.name == cache.shard_name(key)
    assert cache.load_trace(key) is not None
    assert cache.trace_hits == 1


def test_stats_break_down_per_shard_and_tenant(tmp_path, cells, simulated):
    cache = ShardedResultCache(tmp_path / "cache", shards=4)
    view = cache.for_tenant("acme")
    for cell, result in zip(cells, simulated):
        view.store(cell, result)
    view.load(cells[0])
    stats = cache.stats()
    assert stats["results"] == len(cells)
    shard_entries = sum(s["entries"] for s in stats["shards"].values())
    assert shard_entries == len(cells)
    shard_bytes = sum(s["bytes"] for s in stats["shards"].values())
    assert shard_bytes == stats["total_bytes"]
    assert stats["tenants"]["acme"]["stores"] == len(cells)
    assert stats["tenants"]["acme"]["hits"] == 1


def test_tenants_share_identically_keyed_entries(tmp_path, cells, simulated):
    cache = ShardedResultCache(tmp_path / "cache", shards=4)
    alpha, beta = cache.for_tenant("alpha"), cache.for_tenant("beta")
    assert cache.for_tenant("alpha") is alpha  # memoized
    alpha.store(cells[0], simulated[0])
    # beta's identically-keyed lookup hits alpha's stored entry: one file.
    assert beta.load(cells[0]) is not None
    assert beta.hits == 1 and beta.misses == 0
    assert alpha.stores == 1
    assert len(cache) == 1


def test_budget_eviction_is_lru(tmp_path, cells, simulated):
    cache = ShardedResultCache(tmp_path / "cache", shards=4)
    paths = [cache.store(cell, result) for cell, result in zip(cells, simulated)]
    # Age the entries oldest-first, then touch the oldest by loading it.
    for offset, path in enumerate(paths):
        age = 1_000_000 + offset * 1000
        os.utime(path, (age, age))
    assert cache.load(cells[0]) is not None  # refreshes cells[0]'s mtime
    entry_bytes = [path.stat().st_size for path in paths]
    cache.max_bytes = entry_bytes[0] + entry_bytes[2]  # the expected survivors
    report = cache.enforce_budget()
    assert report["removed"] == 1
    # cells[1] was least recently used (cells[0] was touched by the load).
    assert not paths[1].exists()
    assert paths[0].exists() and paths[2].exists()


def test_enforce_budget_without_limit_is_noop(tmp_path, cells, simulated):
    cache = ShardedResultCache(tmp_path / "cache", shards=2)
    cache.store(cells[0], simulated[0])
    assert cache.enforce_budget()["removed"] == 0
    assert len(cache) == 1


def test_janitor_enforces_budget_in_background(tmp_path, cells, simulated):
    import time

    cache = ShardedResultCache(tmp_path / "cache", shards=2, max_bytes=0)
    cache.store(cells[0], simulated[0])
    cache.start_janitor(interval_seconds=0.05)
    try:
        deadline = time.monotonic() + 10
        while len(cache) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert len(cache) == 0
    finally:
        cache.stop_janitor()
    assert cache._janitor is None


def test_invalid_construction_rejected(tmp_path):
    with pytest.raises(ValueError):
        ShardedResultCache(tmp_path, shards=0)
    with pytest.raises(ValueError):
        ShardedResultCache(tmp_path, max_bytes=-1)


# ----------------------------------------------------------------------
# Satellite: prune determinism on the base cache
# ----------------------------------------------------------------------


def test_prune_order_is_deterministic_under_equal_mtimes(
    tmp_path, cells, simulated
):
    reports = []
    for round_ in range(2):
        cache = ResultCache(tmp_path / f"cache-{round_}")
        paths = [
            cache.store(cell, result) for cell, result in zip(cells, simulated)
        ]
        for path in paths:  # identical mtimes: only the name can order them
            os.utime(path, (1_000_000, 1_000_000))
        keep = max(path.stat().st_size for path in paths)
        cache.prune(keep)
        reports.append(sorted(p.name for p in (tmp_path / f"cache-{round_}").glob("*.json")))
    assert reports[0] == reports[1]
    assert len(reports[0]) >= 1


# ----------------------------------------------------------------------
# Satellite: concurrent writers race safely (atomic rename)
# ----------------------------------------------------------------------


def _hammer_store(directory, cell_payload, rounds, writer_id):
    """Child process: repeatedly store the same key with its own payload."""
    from repro.campaign.spec import Campaign, ExperimentSettings
    from repro.core.presets import baseline_config
    from repro.service.cache import ShardedResultCache
    from repro.sim.serialization import result_from_dict

    cache = ShardedResultCache(directory, shards=4)
    cell = Campaign.single(
        baseline_config(),
        ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_000),
    ).cells()[0]
    result = result_from_dict(cell_payload)
    for _ in range(rounds):
        cache.store(cell, result)
    os._exit(0)


def test_concurrent_writers_never_tear_entries(tmp_path, cells, simulated):
    """Two processes hammering one key: every read parses, last write wins."""
    directory = tmp_path / "cache"
    cache = ShardedResultCache(directory, shards=4)
    cell = cells[0]
    payload = result_to_dict(simulated[0])
    context = multiprocessing.get_context()
    writers = [
        context.Process(
            target=_hammer_store, args=(str(directory), payload, 40, i)
        )
        for i in range(2)
    ]
    for writer in writers:
        writer.start()
    # Read concurrently with the writers: a torn write would surface as a
    # JSONDecodeError inside load() -> None with a schema mismatch is the
    # ONLY acceptable miss, and with identical payloads every parse that
    # finds the file must round-trip.
    path = cache.path_for(cell)
    reads = torn = 0
    while any(w.is_alive() for w in writers):
        if path.exists():
            try:
                document = json.loads(path.read_text())
            except json.JSONDecodeError:
                torn += 1
            else:
                reads += 1
                assert document["schema_version"] == payload["schema_version"]
    for writer in writers:
        writer.join(timeout=60)
        assert writer.exitcode == 0
    assert torn == 0
    assert reads > 0
    # Last-writer-wins: the surviving entry is a complete, loadable result.
    final = cache.load(cell)
    assert final is not None
    assert final.stats.cycles == simulated[0].stats.cycles
    # No scratch files were left behind by the atomic writes.
    assert not list(directory.rglob(".*.tmp"))

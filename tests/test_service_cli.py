"""CLI tests for the service verbs (serve/submit/status/watch) and the
graceful KeyboardInterrupt paths (exit code 130)."""

import json

import pytest

from repro.campaign.cli import main
from repro.service import CampaignService, WorkerPool, create_server

UNREACHABLE = "http://127.0.0.1:9"  # port 9 (discard): nothing listens


@pytest.fixture
def server():
    service = CampaignService(
        pool=WorkerPool(workers=2, mode="thread"), max_concurrent_jobs=2
    )
    server = create_server(service)
    server.serve_in_background()
    yield server
    server.shutdown()
    server.server_close()
    service.shutdown(drain=False, timeout=30)


def test_submit_wait_roundtrip(server, capsys):
    assert (
        main(
            [
                "submit",
                "--server",
                server.address,
                "--benchmarks",
                "gzip",
                "--uops",
                "400",
                "--wait",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "job 1" in out
    assert "done" in out
    assert "1 simulated" in out


def test_submit_writes_job_payload(server, capsys, tmp_path):
    output = tmp_path / "job.json"
    assert (
        main(
            [
                "submit",
                "--server",
                server.address,
                "--benchmarks",
                "gzip",
                "--uops",
                "400",
                "--output",
                str(output),
            ]
        )
        == 0
    )
    payload = json.loads(output.read_text())
    assert payload["state"] == "done"
    assert set(payload["results"]["summaries"]) == {"baseline"}


def test_status_lists_jobs_and_shows_one(server, capsys):
    main(
        [
            "submit", "--server", server.address,
            "--benchmarks", "gzip", "--uops", "400", "--wait",
        ]
    )
    capsys.readouterr()
    assert main(["status", "--server", server.address]) == 0
    assert "#1" in capsys.readouterr().out
    assert main(["status", "--server", server.address, "--job", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["state"] == "done"
    assert main(["status", "--server", server.address, "--metrics"]) == 0
    metrics = json.loads(capsys.readouterr().out)
    assert metrics["pool"]["workers"] == 2


def test_status_with_no_jobs(server, capsys):
    assert main(["status", "--server", server.address]) == 0
    assert "no jobs" in capsys.readouterr().out


def test_watch_streams_events(server, capsys):
    main(
        [
            "submit", "--server", server.address,
            "--benchmarks", "gzip", "--uops", "400", "--wait",
        ]
    )
    capsys.readouterr()
    assert main(["watch", "--server", server.address, "--job", "1"]) == 0
    lines = [
        json.loads(line)
        for line in capsys.readouterr().out.splitlines()
        if line.strip()
    ]
    assert lines[0]["event"] == "state"
    assert lines[-1]["state"] == "done"


def test_submit_falls_back_to_local_run(capsys):
    assert (
        main(
            [
                "submit",
                "--server",
                UNREACHABLE,
                "--benchmarks",
                "gzip",
                "--uops",
                "400",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "unreachable" in captured.err
    # The warning states WHY the server was unreachable: nothing listens on
    # the discard port, so the kernel refuses the connection outright.
    assert "connection refused" in captured.err
    assert "falling back to local execution (connection refused)" in captured.err
    assert "1 simulated" in captured.out


def test_submit_falls_back_on_server_error_with_status_reason(capsys):
    """A 5xx answer (server broken, not the campaign) falls back locally,
    and the warning names the HTTP status; 4xx still surfaces as an error."""
    import http.server
    import threading

    class _Failing(http.server.BaseHTTPRequestHandler):
        def do_POST(self):  # noqa: N802 - http.server API
            self.send_response(503)
            self.send_header("Content-Type", "application/json")
            self.end_headers()
            self.wfile.write(b'{"error": "backend exploded"}')

        def log_message(self, *args):
            pass

    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _Failing)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        address = f"http://127.0.0.1:{httpd.server_address[1]}"
        assert (
            main(
                [
                    "submit",
                    "--server",
                    address,
                    "--benchmarks",
                    "gzip",
                    "--uops",
                    "400",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "HTTP 503" in captured.err
        assert (
            "falling back to local execution (server error: HTTP 503)"
            in captured.err
        )
        assert "1 simulated" in captured.out
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


def test_unreachable_reason_classifies_timeouts_and_refusals():
    import socket

    from repro.service.client import ServiceClient, ServiceUnavailable, _unreachable_reason

    assert _unreachable_reason(ConnectionRefusedError()) == "connection refused"
    assert _unreachable_reason(socket.timeout()) == "timed out"
    assert _unreachable_reason(socket.gaierror()) == "dns lookup failed"
    assert _unreachable_reason(ValueError("?")) == "network error"

    # End-to-end over a real socket: a server that accepts but never
    # answers makes the client time out, and the typed error says so.
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{listener.getsockname()[1]}", timeout=0.2
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.healthz()
        assert excinfo.value.reason == "timed out"
        assert "timed out" in str(excinfo.value)
    finally:
        listener.close()


def test_submit_validates_before_submitting(capsys):
    assert (
        main(["submit", "--server", UNREACHABLE, "--configs", "warp_drive"])
        == 2
    )
    assert "error" in capsys.readouterr().err


def test_status_unreachable_server_is_a_clean_error(capsys):
    assert main(["status", "--server", UNREACHABLE]) == 3
    assert "unreachable" in capsys.readouterr().err


def test_run_keyboard_interrupt_exits_130(capsys, monkeypatch):
    import repro.campaign.cli as cli

    def _interrupt(*args, **kwargs):
        raise KeyboardInterrupt()

    monkeypatch.setattr(cli, "run_campaign", _interrupt)
    assert main(["run", "--benchmarks", "gzip", "--uops", "400"]) == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert "0 simulated cell(s)" in err


def test_run_keyboard_interrupt_mentions_cache(
    capsys, monkeypatch, tmp_path
):
    import repro.campaign.cli as cli

    def _interrupt(*args, **kwargs):
        raise KeyboardInterrupt()

    monkeypatch.setattr(cli, "run_campaign", _interrupt)
    assert (
        main(
            [
                "run", "--benchmarks", "gzip", "--uops", "400",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        == 130
    )
    assert "completed cells are in the cache" in capsys.readouterr().err


def test_serve_keyboard_interrupt_drains_and_exits_130(capsys, monkeypatch):
    from repro.service.server import ServiceServer

    def _interrupt(self):
        raise KeyboardInterrupt()

    monkeypatch.setattr(ServiceServer, "serve_forever", _interrupt)
    assert (
        main(["serve", "--port", "0", "--workers", "1", "--worker-mode", "thread"])
        == 130
    )
    captured = capsys.readouterr()
    assert "listening on" in captured.out
    assert "draining" in captured.err
    assert "drained 0 job(s)" in captured.err

"""Tests of the campaign-spec JSON wire format (repro.service.codec)."""

import pytest

from repro.service.codec import (
    campaign_from_payload,
    payload_from_options,
    settings_from_payload,
)


def test_minimal_payload_defaults_to_baseline_smoke():
    campaign = campaign_from_payload({})
    assert campaign.name == "service"
    assert [c.name for c in campaign.configs] == ["baseline"]
    assert campaign.cores == 1
    assert len(campaign) >= 1


def test_full_payload_round_trips_through_options():
    payload = payload_from_options(
        configs=["baseline"],
        scale="smoke",
        benchmarks=["gzip", "swim"],
        uops=2_000,
        seed=11,
        dtm_policies=("none", "dvfs:target=85"),
        name="sweep",
    )
    campaign = campaign_from_payload(payload)
    assert campaign.name == "sweep"
    assert campaign.settings.benchmarks == ("gzip", "swim")
    assert campaign.settings.uops_per_benchmark == 2_000
    assert campaign.settings.seed == 11
    assert campaign.dtm_policies == ("none", "dvfs:target=85")
    assert len(campaign) == 4  # 2 benchmarks x 2 policies


def test_scenarios_keyword_expands_the_library():
    from repro.scenarios import SCENARIO_NAMES

    settings = settings_from_payload({"benchmarks": ["scenarios"]})
    assert settings.benchmarks == tuple(SCENARIO_NAMES)
    # Scenario-only sweeps turn off the SPEC relative-length table.
    assert settings.honor_relative_length is False


def test_spec_benchmarks_keep_relative_lengths():
    settings = settings_from_payload({"benchmarks": ["gzip", "thermal_virus"]})
    assert settings.honor_relative_length is True


def test_chip_payload_infers_cores_from_mixes():
    payload = payload_from_options(
        per_core_scenarios=[("thermal_virus", "idle_crawl")], uops=1_000
    )
    campaign = campaign_from_payload(payload)
    assert campaign.cores == 2
    assert campaign.is_chip


def test_unknown_fields_rejected():
    with pytest.raises(ValueError, match="unknown campaign spec field"):
        campaign_from_payload({"benchmark": ["gzip"]})


def test_non_object_rejected():
    with pytest.raises(ValueError, match="JSON object"):
        campaign_from_payload(["gzip"])


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown scale"):
        settings_from_payload({"scale": "galactic"})


def test_unknown_preset_raises_domain_error():
    with pytest.raises(ValueError):
        campaign_from_payload({"configs": ["warp_drive"]})


def test_unknown_benchmark_raises_domain_error():
    with pytest.raises((ValueError, KeyError)):
        campaign_from_payload({"benchmarks": ["quake3"]}).cells()


def test_tenant_field_is_tolerated():
    campaign = campaign_from_payload({"tenant": "acme", "benchmarks": ["gzip"]})
    assert campaign.settings.benchmarks == ("gzip",)


def test_configs_accepts_a_bare_string():
    campaign = campaign_from_payload({"configs": "baseline"})
    assert [c.name for c in campaign.configs] == ["baseline"]

"""End-to-end tests of the campaign service HTTP surface, including the
correctness lock: concurrently submitted jobs produce bit-identical result
payloads to the same specs run serially through run_campaign."""

import json
import threading
import urllib.request

import pytest

from repro.campaign.core import run_campaign
from repro.campaign.executors import SerialExecutor
from repro.service import (
    CampaignService,
    ServiceClient,
    ServiceError,
    ShardedResultCache,
    WorkerPool,
    campaign_from_payload,
    create_server,
    results_payload,
)

SPEC = {"benchmarks": ["gzip"], "uops": 800, "seed": 3}
SPEC_TWO_CELL = {"benchmarks": ["gzip", "swim"], "uops": 800, "seed": 3}


@pytest.fixture
def stack(tmp_path):
    """An in-process service + HTTP server + client, torn down afterwards."""
    cache = ShardedResultCache(tmp_path / "cache", shards=4)
    service = CampaignService(
        pool=WorkerPool(workers=2, mode="thread"),
        cache=cache,
        max_concurrent_jobs=3,
    )
    server = create_server(service)
    server.serve_in_background()
    client = ServiceClient(server.address, timeout=30)
    yield service, server, client
    server.shutdown()
    server.server_close()
    service.shutdown(drain=False, timeout=30)


def test_healthz_and_metrics(stack):
    _, _, client = stack
    assert client.healthz() == {"status": "ok"}
    metrics = client.metrics()
    assert metrics["pool"]["workers"] == 2
    assert metrics["queue"]["job_slots"] == 3
    assert "hit_rate" in metrics["cache"]


def test_job_lifecycle_and_results(stack):
    _, _, client = stack
    job = client.submit(SPEC_TWO_CELL)
    assert job["id"] == 1
    assert job["state"] in ("pending", "running")
    assert job["cells_total"] == 2
    final = client.wait(job["id"], timeout=180)
    assert final["state"] == "done"
    assert final["cells_done"] == 2
    assert "1 configs x 2 benchmarks" in final["description"]
    summaries = final["results"]["summaries"]
    assert set(summaries) == {"baseline"}
    assert set(summaries["baseline"]) == {"gzip", "swim"}
    assert final["results"]["outcome"]["total_cells"] == 2
    # Without ?results=1 the payload stays lean.
    assert "results" not in client.job(job["id"])
    assert client.jobs()[0]["id"] == job["id"]


def test_event_stream_replays_and_follows(stack):
    _, _, client = stack
    job = client.submit(SPEC)
    client.wait(job["id"], timeout=180)
    events = [e for e in client.events(job["id"]) if e["event"] != "heartbeat"]
    states = [e["state"] for e in events if e["event"] == "state"]
    assert states[0] == "pending"
    assert states[-1] == "done"
    progress = [e for e in events if e["event"] == "progress"]
    assert progress and progress[-1]["cells_done"] == progress[-1]["cells_total"]
    assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)
    # since=N resumes mid-log.
    tail = [e for e in client.events(job["id"], since=events[-1]["seq"])]
    assert [e["seq"] for e in tail if e["event"] != "heartbeat"] == [
        events[-1]["seq"]
    ]


def test_invalid_specs_are_400(stack):
    _, _, client = stack
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"configs": ["warp_drive"]})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"no_such_field": 1})
    assert excinfo.value.status == 400


def test_malformed_json_is_400(stack):
    _, server, _ = stack
    request = urllib.request.Request(
        server.address + "/jobs",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400


def test_unknown_paths_and_jobs_are_404(stack):
    _, _, client = stack
    for path in ("/nope", "/jobs/999", "/jobs/999/events"):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", path)
        assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.cancel(999)
    assert excinfo.value.status == 404


def test_cancel_running_job_drains_cleanly(stack):
    _, _, client = stack
    job = client.submit(
        {"benchmarks": ["scenarios"], "uops": 30_000, "seed": 5}
    )
    cancelled = client.cancel(job["id"])
    assert cancelled["cancel_requested"] is True
    final = client.wait(job["id"], timeout=180)
    assert final["state"] == "cancelled"
    # Cancelling a terminal job is a 409.
    with pytest.raises(ServiceError) as excinfo:
        client.cancel(job["id"])
    assert excinfo.value.status == 409


def test_failing_cell_fails_the_job_not_the_server(stack, monkeypatch):
    service, _, client = stack

    def _explode(task):
        raise RuntimeError("synthetic cell failure")

    # The pool runs tasks inline (thread mode), so patching the function
    # run_campaign dispatches is enough to break every cell of job 1.
    monkeypatch.setattr("repro.campaign.core.execute_campaign_task", _explode)
    job = client.submit(SPEC)
    final = client.wait(job["id"], timeout=180)
    assert final["state"] == "failed"
    assert "synthetic cell failure" in final["error"]
    monkeypatch.undo()
    # The server survives and the next job succeeds.
    job2 = client.submit(SPEC_TWO_CELL)
    assert client.wait(job2["id"], timeout=180)["state"] == "done"
    counts = service.store.counts()
    assert counts["failed"] == 1 and counts["done"] == 1


def test_repeat_submission_hits_the_shared_cache(stack):
    _, _, client = stack
    first = client.wait(client.submit(SPEC_TWO_CELL)["id"], timeout=180)
    second = client.wait(client.submit(SPEC_TWO_CELL)["id"], timeout=180)
    assert second["cache_hits"] == 2
    assert second["results"]["summaries"] == first["results"]["summaries"]
    assert client.metrics()["cache"]["hit_rate"] > 0


def test_tenants_share_the_content_addressed_cache(stack):
    _, _, client = stack
    spec_a = dict(SPEC, tenant="alpha")
    spec_b = dict(SPEC, tenant="beta")
    client.wait(client.submit(spec_a)["id"], timeout=180)
    final = client.wait(client.submit(spec_b)["id"], timeout=180)
    assert final["tenant"] == "beta"
    assert final["cache_hits"] == 1  # beta hit alpha's entry


def test_traces_are_shared_across_jobs(stack):
    _, _, client = stack
    # Job 1 simulates one plain cell; with a cache attached the planner
    # captures its activity trace for future reuse.
    first = client.wait(client.submit(SPEC)["id"], timeout=180)
    assert first["state"] == "done"
    assert first["traces_captured"] == 1
    # Job 2 runs the same cell under the explicit "none" DTM policy: a
    # different cache key (no result hit) but the same timing key — it
    # replays job 1's trace instead of re-simulating the timing stage.
    second = client.wait(
        client.submit(dict(SPEC, dtm_policies=["none"]))["id"], timeout=180
    )
    assert second["state"] == "done"
    assert second["cache_hits"] == 0
    assert second["traces_captured"] == 0
    assert second["cells_replayed"] == 1


def test_concurrent_jobs_match_serial_run_campaign_bit_for_bit(stack):
    """The correctness lock from the issue: N concurrent jobs over HTTP
    produce byte-identical payloads to serial local runs of the same specs.
    """
    _, _, client = stack
    specs = [
        {"benchmarks": ["gzip"], "uops": 800, "seed": 3,
         "dtm_policies": ["none", "dvfs:target=85"]},
        {"benchmarks": ["swim", "mcf"], "uops": 700, "seed": 4},
        {"benchmarks": ["thermal_virus"], "uops": 600, "seed": 5},
    ]
    submitted = [client.submit(spec) for spec in specs]  # all in flight
    finals = [client.wait(job["id"], timeout=300) for job in submitted]
    for spec, final in zip(specs, finals):
        assert final["state"] == "done"
        outcome = run_campaign(
            campaign_from_payload(spec), executor=SerialExecutor(), cache=None
        )
        expected = results_payload(outcome)["summaries"]
        served = final["results"]["summaries"]
        assert json.dumps(served, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )


def test_concurrent_identical_jobs_capture_each_trace_once(tmp_path):
    """Many jobs racing on the same timing key: the trace gate makes one
    leader capture while the others wait and replay its artifact."""
    cache = ShardedResultCache(tmp_path / "cache", shards=4)
    service = CampaignService(
        pool=WorkerPool(workers=4, mode="thread"),
        cache=cache,
        max_concurrent_jobs=4,
    )
    try:
        sweep = {"benchmarks": ["gzip"], "uops": 800, "seed": 9,
                 "dtm_policies": ["none", "dvfs:target=85"]}
        jobs = [service.submit(dict(sweep)) for _ in range(3)]
        for job in jobs:
            deadline = threading.Event()
            while not job.state.terminal:
                deadline.wait(0.05)
        assert all(job.state.value == "done" for job in jobs)
        # One capture total across ALL jobs; the rest replayed or hit.
        assert sum(job.traces_captured for job in jobs) == 1
        assert sum(job.cells_replayed for job in jobs) >= 1

        def _canonical(results):
            # Replayed results are physically identical but carry the
            # documented provenance marker; compare modulo that flag.
            doc = json.loads(json.dumps(results))
            for variant in doc.values():
                for payload in variant.values():
                    payload.get("provenance", {}).pop("replayed", None)
            return json.dumps(doc, sort_keys=True)

        payloads = [_canonical(job.results["summaries"]) for job in jobs]
        assert len(set(payloads)) == 1
    finally:
        service.shutdown(drain=False, timeout=30)


def test_submission_refused_after_shutdown(tmp_path):
    service = CampaignService(pool=WorkerPool(workers=1, mode="thread"))
    service.shutdown(drain=True, timeout=10)
    with pytest.raises(RuntimeError, match="shutting down"):
        service.submit(SPEC)

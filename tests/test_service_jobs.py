"""Unit tests of the service job model: lifecycle, events, progress, ETA,
cancellation and the job store."""

import threading

import pytest

from repro.campaign import Campaign, ExperimentSettings
from repro.core.presets import baseline_config
from repro.service.jobs import Job, JobState, JobStore


@pytest.fixture
def campaign():
    settings = ExperimentSettings(
        benchmarks=("gzip", "swim"), uops_per_benchmark=1_000
    )
    return Campaign.single(baseline_config(), settings)


@pytest.fixture
def job(campaign):
    return Job(1, campaign)


def test_lifecycle_and_timing(job):
    assert job.state is JobState.PENDING
    assert not job.state.terminal
    assert job.cells_total == 2
    job.mark_running()
    assert job.started_at is not None
    job.mark_done({"summaries": {}}, "done", {"cells_executed": 2})
    assert job.state is JobState.DONE
    assert job.state.terminal
    assert job.finished_at >= job.started_at
    assert job.cells_done == job.cells_total
    assert job.cells_simulated == 2


def test_failed_carries_the_error(job):
    job.mark_running()
    job.mark_failed("ValueError: no such benchmark")
    assert job.state is JobState.FAILED
    assert job.to_payload()["error"] == "ValueError: no such benchmark"


def test_events_are_monotonic_and_carry_state(job):
    job.mark_running()
    job.record_progress("run", 1)
    job.mark_done({}, "ok", {})
    events = job.events_since(0)
    assert [e["seq"] for e in events] == list(range(len(events)))
    states = [e["state"] for e in events if e["event"] == "state"]
    assert states == ["pending", "running", "done"]
    kinds = [e["kind"] for e in events if e["event"] == "progress"]
    assert kinds == ["run"]


def test_events_since_blocks_until_news(job):
    def _later():
        job.mark_running()

    thread = threading.Timer(0.05, _later)
    thread.start()
    try:
        events = job.events_since(1, timeout=5)
        assert events and events[0]["state"] == "running"
    finally:
        thread.join()


def test_events_since_times_out_empty(job):
    assert job.events_since(99, timeout=0.01) == []


def test_progress_accounting_and_eta(job):
    job.mark_running()
    job.record_progress("capture", 1)
    job.record_progress("replay", 1)
    assert job.cells_done == 2
    assert job.cells_simulated == 1
    assert job.cells_replayed == 1
    assert job.traces_captured == 1
    payload = job.to_payload()
    assert payload["cells_done"] == 2
    # Progress events in between carried a running ETA (0 < done < total).
    progress = [e for e in job.events_since(0) if e["event"] == "progress"]
    assert "eta_seconds" in progress[0]


def test_cached_cells_count_toward_progress(job):
    job.mark_running()
    job.record_cache_hits(2)
    assert job.cache_hits == 2
    assert job.cells_done == 2
    job.record_cache_hits(0)  # no-op, no event
    assert len([e for e in job.events_since(0) if e["event"] == "progress"]) == 1


def test_cancel_pending_and_refuse_terminal(job):
    assert job.cancel()
    assert job.cancelled
    assert job.cancel()  # idempotent while non-terminal
    job.mark_cancelled()
    assert job.state is JobState.CANCELLED
    assert not job.cancel()  # terminal jobs cannot be re-cancelled
    events = [e["event"] for e in job.events_since(0)]
    assert events.count("cancel_requested") == 1


def test_store_assigns_monotonic_ids(campaign):
    store = JobStore()
    jobs = [store.create(campaign) for _ in range(3)]
    assert [j.id for j in jobs] == [1, 2, 3]
    assert store.get(2) is jobs[1]
    assert store.get(99) is None
    assert [j.id for j in store.jobs()] == [1, 2, 3]
    assert len(store) == 3


def test_store_counts_by_state(campaign):
    store = JobStore()
    a, b = store.create(campaign), store.create(campaign)
    a.mark_running()
    a.mark_done({}, "ok", {})
    counts = store.counts()
    assert counts["done"] == 1
    assert counts["pending"] == 1
    assert counts["total"] == 2

"""Unit tests of the service worker pool: dispatch, crash containment,
timeouts, retries and graceful shutdown."""

import os
import time

import pytest

from repro.campaign.executors import ExecutorTaskError
from repro.service.pool import WorkerPool


def _double(task):
    return task * 2


def _boom(task):
    raise ValueError(f"bad task {task}")


def _die(task):
    os._exit(17)  # simulates a segfault/OOM-kill: no exception, no result


def _die_unless_marker(task):
    """Crash until a marker file exists (created on the first attempt)."""
    marker, value = task
    if os.path.exists(marker):
        return value
    open(marker, "w").close()
    os._exit(9)


def _sleep_forever(task):
    time.sleep(600)


@pytest.fixture
def pool():
    pool = WorkerPool(workers=2, mode="thread")
    yield pool
    pool.shutdown(drain=False)


def test_thread_pool_runs_tasks_in_order(pool):
    futures = [pool.submit(_double, n) for n in range(8)]
    assert [f.result(timeout=10) for f in futures] == [n * 2 for n in range(8)]
    assert pool.metrics()["tasks_completed"] == 8
    assert pool.metrics()["tasks_failed"] == 0


def test_task_exceptions_reach_the_future(pool):
    future = pool.submit(_boom, 3)
    with pytest.raises(ValueError, match="bad task 3"):
        future.result(timeout=10)
    assert pool.metrics()["tasks_failed"] == 1


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        WorkerPool(workers=0)
    with pytest.raises(ValueError):
        WorkerPool(mode="coroutine")
    with pytest.raises(ValueError):
        WorkerPool(retries=-1)


def test_process_mode_runs_in_subprocess():
    pool = WorkerPool(workers=1, mode="process")
    try:
        assert pool.submit(_double, 21).result(timeout=30) == 42
    finally:
        pool.shutdown()


def test_process_mode_contains_worker_death():
    pool = WorkerPool(workers=1, mode="process", retries=0)
    try:
        future = pool.submit(_die, None)
        with pytest.raises(ExecutorTaskError, match="worker process died"):
            future.result(timeout=30)
        # The pool survives the casualty and keeps serving.
        assert pool.submit(_double, 5).result(timeout=30) == 10
    finally:
        pool.shutdown()


def test_process_mode_retries_crashes_with_backoff(tmp_path):
    pool = WorkerPool(workers=1, mode="process", retries=2, retry_backoff=0.01)
    try:
        marker = str(tmp_path / "attempted")
        assert pool.submit(_die_unless_marker, (marker, "ok")).result(
            timeout=30
        ) == "ok"
        assert pool.metrics()["tasks_retried"] == 1
        assert pool.metrics()["tasks_completed"] == 1
    finally:
        pool.shutdown()


def test_process_mode_task_exception_not_retried():
    pool = WorkerPool(workers=1, mode="process", retries=3, retry_backoff=0.01)
    try:
        future = pool.submit(_boom, 7)
        with pytest.raises(ExecutorTaskError, match="bad task 7") as excinfo:
            future.result(timeout=30)
        assert excinfo.value.task == 7
        assert pool.metrics()["tasks_retried"] == 0
    finally:
        pool.shutdown()


def test_process_mode_timeout_kills_the_task():
    pool = WorkerPool(workers=1, mode="process", task_timeout=0.3, retries=3)
    try:
        future = pool.submit(_sleep_forever, None)
        with pytest.raises(ExecutorTaskError, match="timeout") as excinfo:
            future.result(timeout=30)
        assert excinfo.value.task is None
        assert pool.metrics()["tasks_retried"] == 0  # timeouts don't retry
    finally:
        pool.shutdown()


def test_drain_waits_for_submitted_work(pool):
    futures = [pool.submit(_double, n) for n in range(6)]
    assert pool.drain(timeout=10)
    assert all(f.done() for f in futures)
    assert pool.queue_depth == 0


def test_shutdown_refuses_new_work(pool):
    pool.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        pool.submit(_double, 1)


def test_shutdown_without_drain_fails_queued_tasks():
    import threading

    pool = WorkerPool(workers=1, mode="thread")
    started = threading.Event()

    def _block(_task):
        started.set()
        time.sleep(0.3)

    blocker = pool.submit(_block, None)
    assert started.wait(timeout=10)  # the worker holds it before we queue more
    queued = [pool.submit(_double, n) for n in range(4)]
    pool.shutdown(drain=False)
    blocker.result(timeout=10)
    failed = 0
    for future in queued:
        try:
            future.result(timeout=10)
        except ExecutorTaskError:
            failed += 1
    # The in-flight sleep finished; everything still queued was failed.
    assert failed >= 3


def test_metrics_shape(pool):
    metrics = pool.metrics()
    assert metrics["workers"] == 2
    assert metrics["mode"] == "thread"
    assert set(metrics) >= {
        "busy_workers",
        "utilization",
        "queue_depth",
        "tasks_completed",
        "tasks_failed",
        "tasks_retried",
    }

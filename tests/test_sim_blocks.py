"""Unit tests for the canonical block naming."""

from repro.core.presets import bank_hopping_config, distributed_rename_commit_config
from repro.sim import blocks


def test_baseline_block_set(config):
    names = blocks.all_blocks(config)
    assert len(names) == len(set(names))
    assert "ROB" in names and "RAT" in names
    assert "TC0" in names and "TC1" in names and "TC2" not in names
    assert "UL2" in names
    assert "C0_DL1" in names and "C3_IRF" in names


def test_distributed_configuration_splits_rob_and_rat():
    config = distributed_rename_commit_config()
    names = blocks.all_blocks(config)
    assert "ROB0" in names and "ROB1" in names and "ROB" not in names
    assert "RAT0" in names and "RAT1" in names and "RAT" not in names


def test_bank_hopping_configuration_adds_a_bank():
    config = bank_hopping_config()
    assert blocks.trace_cache_blocks(config) == ["TC0", "TC1", "TC2"]


def test_block_counts(config):
    assert len(blocks.frontend_blocks(config)) == 2 + 3 + 2  # ROB, RAT, ITLB/DECO/BP, TC0/TC1
    assert len(blocks.cluster_blocks(config, 0)) == len(blocks.CLUSTER_BLOCK_SUFFIXES)
    assert len(blocks.backend_blocks(config)) == 4 * len(blocks.CLUSTER_BLOCK_SUFFIXES)
    assert len(blocks.all_blocks(config)) == (
        len(blocks.frontend_blocks(config)) + len(blocks.backend_blocks(config)) + 1
    )


def test_block_groups_cover_every_block(config):
    groups = blocks.block_groups(config)
    assert set(groups["Processor"]) == set(blocks.all_blocks(config))
    assert set(groups["Frontend"]) | set(groups["Backend"]) | {"UL2"} == set(groups["Processor"])
    assert groups["ReorderBuffer"] == ["ROB"]
    assert groups["RenameTable"] == ["RAT"]
    assert groups["TraceCache"] == ["TC0", "TC1"]


def test_rob_and_rat_block_names_collapse_for_single_frontend():
    assert blocks.rob_block(0, 1) == "ROB"
    assert blocks.rob_block(1, 2) == "ROB1"
    assert blocks.rat_block(0, 2) == "RAT0"


def test_cluster_block_name_format():
    assert blocks.cluster_block(2, blocks.CLUSTER_MOB) == "C2_MOB"
    assert blocks.trace_cache_bank_block(1) == "TC1"

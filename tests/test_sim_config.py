"""Unit tests for the processor configuration (Table 1)."""

import dataclasses

import pytest

from repro.sim.config import (
    FrontendConfig,
    ProcessorConfig,
    SteeringPolicy,
    TraceCacheConfig,
)


def test_baseline_matches_table1_headline_values(config):
    assert config.frontend.fetch_width == 8
    assert config.frontend.trace_cache.capacity_uops == 32 * 1024
    assert config.backend.num_clusters == 4
    assert config.memory.ul2_hit_latency == 12
    assert config.power.frequency_ghz == 10.0
    assert config.thermal.emergency_limit_kelvin == 381.0


def test_trace_cache_derived_geometry():
    tc = TraceCacheConfig()
    assert tc.total_lines == tc.capacity_uops // tc.line_uops
    assert tc.lines_per_bank == tc.total_lines // tc.active_banks
    assert tc.sets_per_bank == tc.lines_per_bank // tc.associativity


def test_trace_cache_validation():
    with pytest.raises(ValueError):
        TraceCacheConfig(active_banks=3, physical_banks=2)
    with pytest.raises(ValueError):
        TraceCacheConfig(bank_hopping=True, physical_banks=2, active_banks=2)
    with pytest.raises(ValueError):
        TraceCacheConfig(blank_silicon=True, physical_banks=2, active_banks=2)
    with pytest.raises(ValueError):
        TraceCacheConfig(capacity_uops=0)


def test_frontend_validation():
    with pytest.raises(ValueError):
        FrontendConfig(rob_entries=255, num_frontends=2)  # must divide evenly
    with pytest.raises(ValueError):
        FrontendConfig(num_frontends=0)
    fe = FrontendConfig(num_frontends=2)
    assert fe.is_distributed
    assert fe.rob_entries_per_frontend == fe.rob_entries // 2


def test_clusters_must_divide_across_frontends():
    with pytest.raises(ValueError):
        ProcessorConfig(frontend=FrontendConfig(num_frontends=3, rob_entries=255))


def test_frontend_of_cluster_mapping():
    config = ProcessorConfig(frontend=FrontendConfig(num_frontends=2, rob_entries=256))
    assert config.clusters_per_frontend == 2
    assert [config.frontend_of_cluster(c) for c in range(4)] == [0, 0, 1, 1]
    assert config.clusters_of_frontend(0) == (0, 1)
    assert config.clusters_of_frontend(1) == (2, 3)
    with pytest.raises(ValueError):
        config.frontend_of_cluster(4)
    with pytest.raises(ValueError):
        config.clusters_of_frontend(2)


def test_with_intervals_scales_all_periodic_intervals(config):
    scaled = config.with_intervals(1234)
    assert scaled.thermal.interval_cycles == 1234
    assert scaled.frontend.trace_cache.hop_interval_cycles == 1234
    assert scaled.frontend.trace_cache.remap_interval_cycles == 1234
    # The original configuration is unchanged (frozen dataclasses).
    assert config.thermal.interval_cycles == 10_000_000
    with pytest.raises(ValueError):
        config.with_intervals(0)


def test_renamed_returns_copy_with_new_name(config):
    renamed = config.renamed("other")
    assert renamed.name == "other"
    assert config.name == "baseline"
    assert renamed.backend == config.backend


def test_describe_mentions_key_parameters(config):
    text = config.describe()
    assert "32768 uops" in text
    assert "4 clusters" in text
    assert "2 MB" in text
    assert "65 nm" in text


def test_to_dict_roundtrips_basic_fields(config):
    as_dict = config.to_dict()
    assert as_dict["frontend"]["fetch_width"] == 8
    assert as_dict["memory"]["ul2_kb"] == 2048


def test_steering_policy_enum_values():
    assert SteeringPolicy("dependence") is SteeringPolicy.DEPENDENCE
    assert {p.value for p in SteeringPolicy} == {"dependence", "round_robin", "load_balance"}


def test_configs_are_immutable(config):
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.name = "mutated"

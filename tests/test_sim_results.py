"""Unit tests for the SimulationResult metrics."""

import pytest

from repro.sim.results import IntervalRecord, SimulationResult
from repro.sim.stats import SimulationStats


def _make_result(temps_per_interval, config_name="baseline", cycles=100):
    """Build a small synthetic result with two blocks A (hot) and B (cold)."""
    intervals = []
    for i, (ta, tb) in enumerate(temps_per_interval):
        intervals.append(
            IntervalRecord(
                cycle=(i + 1) * 10,
                seconds=(i + 1) * 1e-3,
                dynamic_power={"A": 5.0, "B": 2.0},
                leakage_power={"A": 1.0, "B": 0.5},
                temperature={"A": ta, "B": tb},
            )
        )
    stats = SimulationStats(cycles=cycles, committed_uops=cycles * 2)
    return SimulationResult(
        config_name=config_name,
        benchmark="synthetic",
        stats=stats,
        block_names=["A", "B"],
        block_groups={"All": ["A", "B"], "Hot": ["A"]},
        block_areas_mm2={"A": 2.0, "B": 4.0},
        intervals=intervals,
        ambient_celsius=45.0,
    )


def test_temperature_metrics_absmax_average_avgmax():
    result = _make_result([(85.0, 65.0), (95.0, 55.0)])
    metrics = result.temperature_metrics("All")
    assert metrics["AbsMax"] == pytest.approx(95.0 - 45.0)
    assert metrics["AvgMax"] == pytest.approx(((85 - 45) + (95 - 45)) / 2)
    assert metrics["Average"] == pytest.approx(((75 - 45) + (75 - 45)) / 2)


def test_single_block_group_lookup_by_block_name():
    result = _make_result([(85.0, 65.0)])
    assert result.temperature_metrics("Hot")["AbsMax"] == pytest.approx(40.0)
    # A raw block name also works even if it is not a named group.
    assert result.temperature_metrics("B")["AbsMax"] == pytest.approx(20.0)


def test_unknown_group_raises_with_known_groups_listed():
    result = _make_result([(85.0, 65.0)])
    with pytest.raises(KeyError, match="All"):
        result.temperature_metrics("nonexistent")


def test_metrics_require_at_least_one_interval():
    result = _make_result([])
    with pytest.raises(ValueError):
        result.temperature_metrics("All")


def test_power_and_area_accessors():
    result = _make_result([(85.0, 65.0), (95.0, 55.0)])
    assert result.average_power() == pytest.approx(8.5)
    assert result.average_dynamic_power() == pytest.approx(7.0)
    assert result.average_group_power("Hot") == pytest.approx(6.0)
    assert result.group_area_mm2("All") == pytest.approx(6.0)
    assert result.peak_temperature() == pytest.approx(95.0)


def test_temperature_reduction_vs_baseline():
    baseline = _make_result([(105.0, 65.0)])
    improved = _make_result([(85.0, 65.0)], config_name="improved")
    reductions = improved.temperature_reduction_vs(baseline, "Hot")
    # Baseline increase 60 C, improved 40 C -> 33% reduction.
    assert reductions["AbsMax"] == pytest.approx(1 / 3, abs=1e-6)


def test_slowdown_vs_baseline():
    baseline = _make_result([(85.0, 65.0)], cycles=100)
    slower = _make_result([(85.0, 65.0)], cycles=104)
    assert slower.slowdown_vs(baseline) == pytest.approx(0.04)
    assert baseline.slowdown_vs(slower) == pytest.approx(-0.0384615, abs=1e-4)


def test_summary_mentions_benchmark_and_ipc():
    result = _make_result([(85.0, 65.0)])
    text = result.summary()
    assert "synthetic" in text and "baseline" in text

"""Unit tests for activity counters and simulation statistics."""

import pytest

from repro.sim.stats import ActivityCounters, SimulationStats


def test_activity_counters_record_and_reset():
    counters = ActivityCounters(["A", "B"])
    counters.record("A")
    counters.record("A", 3)
    counters.record("B", 2)
    assert counters.interval_counts() == {"A": 4, "B": 2}
    snapshot = counters.end_interval()
    assert snapshot == {"A": 4, "B": 2}
    assert counters.interval_counts() == {"A": 0, "B": 0}
    assert counters.total_counts() == {"A": 4, "B": 2}


def test_activity_counters_accumulate_totals_across_intervals():
    counters = ActivityCounters(["A"])
    counters.record("A", 2)
    counters.end_interval()
    counters.record("A", 5)
    counters.end_interval()
    assert counters.total_counts()["A"] == 7


def test_activity_counters_reject_unknown_and_duplicate_blocks():
    counters = ActivityCounters(["A"])
    with pytest.raises(KeyError):
        counters.record("missing")
    with pytest.raises(ValueError):
        ActivityCounters(["X", "X"])


def test_simulation_stats_rates_handle_zero_denominators():
    stats = SimulationStats()
    assert stats.ipc == 0.0
    assert stats.trace_cache_hit_rate == 0.0
    assert stats.dcache_hit_rate == 0.0
    assert stats.misprediction_rate == 0.0


def test_simulation_stats_rates():
    stats = SimulationStats(
        cycles=100,
        committed_uops=250,
        trace_cache_hits=90,
        trace_cache_misses=10,
        dcache_hits=30,
        dcache_misses=10,
        branches=50,
        mispredicted_branches=5,
    )
    assert stats.ipc == 2.5
    assert stats.trace_cache_hit_rate == 0.9
    assert stats.dcache_hit_rate == 0.75
    assert stats.misprediction_rate == 0.1


def test_cluster_balance_sums_to_one():
    stats = SimulationStats()
    for cluster, count in [(0, 10), (1, 30), (2, 40), (3, 20)]:
        for _ in range(count):
            stats.record_dispatch(cluster)
    balance = stats.cluster_balance()
    assert pytest.approx(sum(balance.values())) == 1.0
    assert balance[2] == 0.4


def test_cluster_balance_empty():
    assert SimulationStats().cluster_balance() == {}


def test_as_dict_contains_key_counters():
    stats = SimulationStats(cycles=10, committed_uops=20, fetched_uops=25)
    as_dict = stats.as_dict()
    assert as_dict["cycles"] == 10
    assert as_dict["committed_uops"] == 20
    assert as_dict["ipc"] == 2.0

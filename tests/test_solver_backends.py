"""Dense-vs-sparse solver equivalence and backend-selection tests.

The thermal solver's two factorization backends (LAPACK LU over the dense
Laplacian, SuperLU over the CSC assembly — see :mod:`repro.thermal.solver`)
are *tolerance-equivalent*, not bit-identical: different elimination orders
round differently in the last ulps.  The documented contract is that every
solve path — steady state, transient advance, warmup, the batched multi-RHS
kernels, the propagator cache — agrees across backends within
``rtol=1e-8 / atol=1e-8`` (degrees Celsius), far looser than the backends
actually achieve and far tighter than any thermal metric resolves.  These
tests pin that contract on randomized floorplans and on real 1/2/4/16-core
composite dies, pin the ``auto`` threshold's selection behaviour at its
boundary, and pin the dense path's bit-exactness (what keeps every golden
fixture valid).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import repro.thermal.solver as solver_module
from repro.chip import build_chip_physics
from repro.core.presets import baseline_config
from repro.sim.config import ThermalConfig
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.solver import (
    SPARSE_NODE_THRESHOLD,
    ThermalSolver,
    resolve_backend,
    sparse_backend_available,
)
from tests.test_thermal_laplacian import random_grid_floorplan

#: The documented cross-backend equivalence contract (degrees Celsius).
STEADY_RTOL = 1e-8
STEADY_ATOL = 1e-8

requires_scipy = pytest.mark.skipif(
    not sparse_backend_available(), reason="scipy (SuperLU) not installed"
)


def _random_network(seed: int) -> ThermalRCNetwork:
    floorplan = random_grid_floorplan(random.Random(seed))
    return ThermalRCNetwork(floorplan, ThermalConfig())


def _chip_network(cores: int) -> ThermalRCNetwork:
    physics, _, _ = build_chip_physics(baseline_config(), cores)
    return physics.network


def _node_power(network: ThermalRCNetwork, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    power = np.zeros(network.num_nodes)
    power[: network.num_blocks] = rng.uniform(0.1, 4.0, network.num_blocks)
    return power


def _pair(network: ThermalRCNetwork):
    return (
        ThermalSolver(network, backend="dense"),
        ThermalSolver(network, backend="sparse"),
    )


# ----------------------------------------------------------------------
# Backend resolution (the "auto" threshold)
# ----------------------------------------------------------------------
def test_resolve_backend_validates_choice():
    with pytest.raises(ValueError, match="solver backend"):
        resolve_backend("cholesky", 100)


def test_resolve_dense_is_always_dense():
    assert resolve_backend("dense", 10_000) == "dense"


@requires_scipy
def test_resolve_auto_flips_exactly_at_threshold():
    assert resolve_backend("auto", SPARSE_NODE_THRESHOLD - 1) == "dense"
    assert resolve_backend("auto", SPARSE_NODE_THRESHOLD) == "sparse"
    assert resolve_backend("auto", SPARSE_NODE_THRESHOLD + 1) == "sparse"


def test_auto_resolves_dense_without_scipy(monkeypatch):
    monkeypatch.setattr(solver_module, "_splu", None)
    assert resolve_backend("auto", SPARSE_NODE_THRESHOLD * 4) == "dense"


def test_explicit_sparse_without_scipy_raises(monkeypatch):
    monkeypatch.setattr(solver_module, "_splu", None)
    with pytest.raises(RuntimeError, match="sparse"):
        resolve_backend("sparse", 100)
    network = _random_network(0)
    with pytest.raises(RuntimeError, match="sparse"):
        ThermalSolver(network, backend="sparse")


def test_auto_keeps_small_dies_dense():
    """1–4-core dies stay on the dense (bit-identical, golden) path."""
    for cores in (1, 2, 4):
        network = _chip_network(cores)
        assert network.num_nodes < SPARSE_NODE_THRESHOLD
        assert ThermalSolver(network, backend="auto").backend == "dense"


@requires_scipy
def test_auto_flips_16_core_dies_to_sparse():
    network = _chip_network(16)
    assert network.num_nodes >= SPARSE_NODE_THRESHOLD
    assert ThermalSolver(network, backend="auto").backend == "sparse"


def test_invalid_ordering_rejected():
    with pytest.raises(ValueError, match="ordering"):
        ThermalSolver(_random_network(1), ordering="amd")


def test_physics_stage_exposes_resolved_backend():
    physics, _, _ = build_chip_physics(baseline_config(), 2)
    assert physics.solver_backend == "dense"
    if sparse_backend_available():
        physics16, _, _ = build_chip_physics(baseline_config(), 16)
        assert physics16.solver_backend == "sparse"
        forced, _, _ = build_chip_physics(baseline_config(), 2, solver_backend="sparse")
        assert forced.solver_backend == "sparse"


def test_auto_is_bitwise_dense_below_threshold():
    """Below the threshold, "auto" IS the dense solver — not merely close.

    This is the golden-fixture guarantee: every fixture was recorded
    through small dense-path dies, and the auto default must keep
    reproducing them bit-for-bit.
    """
    network = _chip_network(1)
    power = _node_power(network)
    auto = ThermalSolver(network, backend="auto")
    dense = ThermalSolver(network, backend="dense")
    assert auto.backend == "dense"
    np.testing.assert_array_equal(
        auto.steady_state_nodes(power), dense.steady_state_nodes(power)
    )
    state = network.uniform_state(network.config.ambient_celsius)
    np.testing.assert_array_equal(
        auto.advance_nodes(state, power, 1e-3),
        dense.advance_nodes(state, power, 1e-3),
    )


# ----------------------------------------------------------------------
# Cross-backend equivalence, path by path
# ----------------------------------------------------------------------
@requires_scipy
@pytest.mark.parametrize("seed", range(4))
def test_steady_state_equivalence_on_random_floorplans(seed):
    network = _random_network(seed)
    dense, sparse = _pair(network)
    power = _node_power(network, seed)
    np.testing.assert_allclose(
        sparse.steady_state_nodes(power),
        dense.steady_state_nodes(power),
        rtol=STEADY_RTOL,
        atol=STEADY_ATOL,
    )


@requires_scipy
@pytest.mark.parametrize("cores", [1, 2, 4, 16])
def test_steady_state_equivalence_on_composite_dies(cores):
    network = _chip_network(cores)
    dense, sparse = _pair(network)
    power = _node_power(network)
    np.testing.assert_allclose(
        sparse.steady_state_nodes(power),
        dense.steady_state_nodes(power),
        rtol=STEADY_RTOL,
        atol=STEADY_ATOL,
    )


@requires_scipy
@pytest.mark.parametrize("cores", [2, 16])
def test_advance_equivalence(cores):
    network = _chip_network(cores)
    dense, sparse = _pair(network)
    power = _node_power(network)
    state = network.uniform_state(network.config.ambient_celsius)
    dt = 1e-3
    d, s = state, state
    for _ in range(5):
        d = dense.advance_nodes(d, power, dt)
        s = sparse.advance_nodes(s, power, dt)
    np.testing.assert_allclose(s, d, rtol=STEADY_RTOL, atol=STEADY_ATOL)


@requires_scipy
def test_warmup_equivalence():
    network = _chip_network(2)
    dense, sparse = _pair(network)
    base = _node_power(network)

    def power_at(state: np.ndarray) -> np.ndarray:
        # Mildly temperature-dependent power (a leakage-like feedback).
        scale = 1.0 + 0.002 * (state - network.config.ambient_celsius)
        return base * np.clip(scale, 1.0, 2.0)

    state_d, blocks_d = dense.warmup_nodes(power_at)
    state_s, blocks_s = sparse.warmup_nodes(power_at)
    np.testing.assert_allclose(state_s, state_d, rtol=STEADY_RTOL, atol=STEADY_ATOL)
    np.testing.assert_allclose(blocks_s, blocks_d, rtol=STEADY_RTOL, atol=STEADY_ATOL)


@requires_scipy
@pytest.mark.parametrize("cores", [2, 16])
def test_batched_multi_rhs_equivalence(cores):
    network = _chip_network(cores)
    dense, sparse = _pair(network)
    rng = np.random.default_rng(7)
    cells = 6
    powers = rng.uniform(0.0, 4.0, size=(network.num_nodes, cells))
    np.testing.assert_allclose(
        sparse.steady_state_nodes_batch(powers),
        dense.steady_state_nodes_batch(powers),
        rtol=STEADY_RTOL,
        atol=STEADY_ATOL,
    )
    states = np.full((network.num_nodes, cells), network.config.ambient_celsius)
    np.testing.assert_allclose(
        sparse.advance_nodes_batch(states, powers, 1e-3),
        dense.advance_nodes_batch(states, powers, 1e-3),
        rtol=STEADY_RTOL,
        atol=STEADY_ATOL,
    )


@requires_scipy
def test_propagator_cache_equivalence_across_interval_lengths():
    """Both backends handle the variable-length final interval identically."""
    network = _chip_network(2)
    dense, sparse = _pair(network)
    power = _node_power(network)
    state = network.uniform_state(network.config.ambient_celsius)
    for dt in (1e-3, 1e-3, 2.5e-4, 1e-3):  # steady, steady, final, steady
        d = dense.advance_nodes(state, power, dt)
        s = sparse.advance_nodes(state, power, dt)
        np.testing.assert_allclose(s, d, rtol=STEADY_RTOL, atol=STEADY_ATOL)
        state = d


@requires_scipy
def test_natural_and_colamd_orderings_agree():
    network = _chip_network(4)
    colamd = ThermalSolver(network, backend="sparse", ordering="colamd")
    natural = ThermalSolver(network, backend="sparse", ordering="natural")
    power = _node_power(network)
    np.testing.assert_allclose(
        natural.steady_state_nodes(power),
        colamd.steady_state_nodes(power),
        rtol=STEADY_RTOL,
        atol=STEADY_ATOL,
    )


# ----------------------------------------------------------------------
# In-place backend flips and the (backend, dt) propagator-cache key
# ----------------------------------------------------------------------
@requires_scipy
def test_set_backend_flips_and_flips_back_bit_identically():
    network = _chip_network(2)
    solver = ThermalSolver(network, backend="dense")
    power = _node_power(network)
    state = network.uniform_state(network.config.ambient_celsius)
    dt = 1e-3

    before = solver.advance_nodes(state, power, dt)
    assert solver.set_backend("sparse") == "sparse"
    flipped = solver.advance_nodes(state, power, dt)
    np.testing.assert_allclose(flipped, before, rtol=STEADY_RTOL, atol=STEADY_ATOL)

    # The propagator cache now holds one entry per backend for the same dt:
    # the fix under test — a dt-only key would have served the dense
    # exponential to the sparse backend (and the flip back below would
    # silently keep sparse results on the dense path).
    keys = list(solver._propagator_cache)
    assert ("dense", dt) in keys and ("sparse", dt) in keys

    assert solver.set_backend("dense") == "dense"
    after = solver.advance_nodes(state, power, dt)
    np.testing.assert_array_equal(after, before)


@requires_scipy
def test_propagator_cache_is_per_backend_lru():
    network = _chip_network(1)
    solver = ThermalSolver(network, backend="dense")
    power = _node_power(network)
    state = network.uniform_state(network.config.ambient_celsius)
    solver.advance_nodes(state, power, 1e-3)
    solver.set_backend("sparse")
    solver.advance_nodes(state, power, 1e-3)
    dense_prop = solver._propagator_cache[("dense", 1e-3)]
    sparse_prop = solver._propagator_cache[("sparse", 1e-3)]
    assert dense_prop is not sparse_prop


# ----------------------------------------------------------------------
# 16-core heterogeneous campaign: the end-to-end acceptance run
# ----------------------------------------------------------------------
@requires_scipy
def test_sixteen_core_campaign_sparse_matches_dense(tmp_path):
    """A 16-core heterogeneous campaign completes on the sparse backend and
    agrees with the dense run within the documented tolerance — while the
    two backends' cells mint distinct result-cache keys."""
    from repro.campaign import Campaign, ExperimentSettings, ResultCache, run_campaign

    mix = "+".join(
        ("hot_loop", "thermal_virus", "memory_bound", "idle_crawl")[c % 4]
        for c in range(16)
    )
    settings = ExperimentSettings(
        benchmarks=("hot_loop",),
        uops_per_benchmark=1200,
        seed=5,
        honor_relative_length=False,
    )

    def campaign(backend: str) -> Campaign:
        return Campaign(
            (baseline_config(),),
            settings,
            name=f"accept_{backend}",
            cores=16,
            per_core_scenarios=(mix,),
            solver_backend=backend,
        )

    sparse_cell = campaign("sparse").cells()[0]
    dense_cell = campaign("dense").cells()[0]
    assert sparse_cell.cache_key() != dense_cell.cache_key()

    # One shared trace cache: the per-uop timing runs once per scenario and
    # both backends replay the same four captured traces.
    cache = ResultCache(str(tmp_path))
    sparse_outcome = run_campaign(campaign("sparse"), cache=cache)
    dense_outcome = run_campaign(campaign("dense"), cache=cache)

    sparse_result = sparse_outcome.summaries["baseline"].results[mix]
    dense_result = dense_outcome.summaries["baseline"].results[mix]
    assert sparse_result.provenance["solver_backend"] == "sparse"
    assert dense_result.provenance["solver_backend"] == "dense"

    # Performance telemetry is solver-independent...
    assert sparse_result.chip["aggregate"]["chip_ipc"] == (
        dense_result.chip["aggregate"]["chip_ipc"]
    )
    # ...and every thermal trajectory matches within the contract.
    for block, value in sparse_result.warmup_temperature.items():
        assert value == pytest.approx(
            dense_result.warmup_temperature[block],
            rel=STEADY_RTOL,
            abs=STEADY_ATOL,
        )
    assert len(sparse_result.intervals) == len(dense_result.intervals)
    for interval_s, interval_d in zip(
        sparse_result.intervals, dense_result.intervals
    ):
        for block, value in interval_s.temperature.items():
            assert value == pytest.approx(
                interval_d.temperature[block], rel=STEADY_RTOL, abs=STEADY_ATOL
            )
    assert sparse_result.chip["aggregate"]["peak_celsius"] == pytest.approx(
        dense_result.chip["aggregate"]["peak_celsius"],
        rel=STEADY_RTOL,
        abs=STEADY_ATOL,
    )

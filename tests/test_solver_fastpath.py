"""Correctness tests for the factorized thermal solver and the array fast path.

The array-backed pipeline promises *metric-identical* results to the
dict-per-block implementation it replaced.  These tests pin the individual
pieces of that promise:

* the LU-factorized steady-state solve agrees with a from-scratch
  ``np.linalg.solve`` against the same conductance matrix;
* the transient ``advance`` over one interval agrees with N fine-grained
  sub-steps (the matrix exponential is exact, so splitting the interval must
  not change the endpoint);
* the propagator cache returns correct results when the final interval of a
  trace is shorter than the steady interval (a different ``dt`` must not
  reuse the steady-interval propagator);
* the warm-up fixed point converges, and exits early at the 381 K
  emergency limit when the power is pathological;
* the dict and array entry points of the power/leakage/activity layers
  produce identical numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.presets import baseline_config
from repro.power.energy import build_block_parameters
from repro.power.power_model import PowerModel
from repro.sim.block_index import BlockIndex
from repro.sim.stats import ActivityCounters
from repro.thermal.floorplan import build_floorplan
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.solver import ThermalSolver


@pytest.fixture(scope="module")
def network():
    config = baseline_config()
    params = build_block_parameters(config)
    floorplan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})
    return ThermalRCNetwork(floorplan, config.thermal)


@pytest.fixture()
def solver(network):
    return ThermalSolver(network)


def _power(network, watts=1.5):
    return {name: watts for name in network.block_names}


# ----------------------------------------------------------------------
# Factorized steady-state solve
# ----------------------------------------------------------------------
def test_factorized_steady_state_matches_direct_solve(network, solver):
    power = {name: 0.5 + i * 0.1 for i, name in enumerate(network.block_names)}
    rhs = network.power_vector(power) + network.ambient_source()
    direct = np.linalg.solve(network.conductance, rhs)
    factorized = solver.steady_state_vector(power)
    np.testing.assert_allclose(factorized, direct, rtol=1e-12, atol=1e-12)


def test_steady_state_solve_is_reused_not_refactorized(network, solver):
    """Repeated solves give identical answers (the factors never change)."""
    power = _power(network)
    first = solver.steady_state_vector(power)
    second = solver.steady_state_vector(power)
    np.testing.assert_array_equal(first, second)


# ----------------------------------------------------------------------
# Transient advance vs. sub-stepping
# ----------------------------------------------------------------------
def test_advance_agrees_with_fine_grained_substeps(network, solver):
    power = _power(network, watts=2.0)
    dt = 1e-3
    state = network.uniform_state(network.config.ambient_celsius)
    one_step = solver.advance(state, power, dt)
    substepped = state
    for _ in range(16):
        substepped = solver.advance(substepped, power, dt / 16)
    np.testing.assert_allclose(one_step, substepped, rtol=1e-9, atol=1e-9)


# ----------------------------------------------------------------------
# Propagator cache and the variable-length final interval
# ----------------------------------------------------------------------
def test_propagator_cache_handles_shorter_final_interval(network, solver):
    """A final interval with fewer cycles must not reuse the steady propagator."""
    power = _power(network, watts=2.0)
    steady_dt = 1e-3
    final_dt = steady_dt * (137 / 800)  # a trace ending mid-interval
    state = network.uniform_state(network.config.ambient_celsius)
    # Populate the cache with the steady-interval propagator first, as a run
    # does, then advance over the shorter final interval.
    for _ in range(3):
        state = solver.advance(state, power, steady_dt)
    cached_final = solver.advance(state, power, final_dt)
    # A pristine solver (empty cache) must produce the same answer.
    fresh = ThermalSolver(network).advance(state, power, final_dt)
    np.testing.assert_array_equal(cached_final, fresh)
    assert len(solver._propagator_cache) == 2  # steady + final dt
    # And the shorter step must differ from a full steady step (i.e. the
    # steady propagator was not silently reused).
    full_step = solver.advance(state, power, steady_dt)
    assert not np.array_equal(cached_final, full_step)


def test_propagator_cache_is_keyed_by_exact_dt(network, solver):
    power = _power(network)
    state = network.uniform_state(50.0)
    solver.advance(state, power, 1e-3)
    solver.advance(state, power, 1e-3)
    assert len(solver._propagator_cache) == 1
    solver.advance(state, power, 2e-3)
    assert len(solver._propagator_cache) == 2


def test_advance_rejects_nonpositive_dt(network, solver):
    state = network.uniform_state(45.0)
    with pytest.raises(ValueError):
        solver.advance(state, _power(network), 0.0)


def test_propagator_cache_is_bounded_lru(network, solver):
    """A campaign with many distinct final-interval lengths must not grow
    the propagator cache without limit (regression: PR 2 keyed by exact dt
    with no cap)."""
    cap = ThermalSolver.PROPAGATOR_CACHE_SIZE
    power = _power(network)
    state = network.uniform_state(50.0)
    for i in range(cap + 20):
        solver.advance(state, power, 1e-3 * (1 + i / 1000))
    assert len(solver._propagator_cache) == cap

    # LRU, not FIFO: re-touching the oldest surviving entry keeps it alive
    # through the next eviction.  Cache keys are (backend, dt) pairs.
    oldest_key = next(iter(solver._propagator_cache))
    solver.advance(state, power, oldest_key[1])
    solver.advance(state, power, 99e-3)  # evicts one entry, not oldest_key
    assert oldest_key in solver._propagator_cache
    assert len(solver._propagator_cache) == cap

    # Evicted propagators are transparently recomputed with the same result.
    evicted_dt = 1e-3
    fresh = ThermalSolver(network)
    np.testing.assert_array_equal(
        solver.advance(state, power, evicted_dt),
        fresh.advance(state, power, evicted_dt),
    )


# ----------------------------------------------------------------------
# Batched transient kernels (the campaign-replay layout)
# ----------------------------------------------------------------------
def test_batched_steady_state_matches_per_column(network, solver):
    rng = np.random.default_rng(3)
    cells = 7
    node_power = rng.uniform(0.0, 3.0, size=(network.num_nodes, cells))
    batched = solver.steady_state_nodes_batch(node_power)
    assert batched.shape == (network.num_nodes, cells)
    for c in range(cells):
        np.testing.assert_allclose(
            batched[:, c],
            solver.steady_state_nodes(node_power[:, c].copy()),
            rtol=1e-12,
            atol=1e-12,
        )


def test_batched_advance_matches_per_column(network, solver):
    rng = np.random.default_rng(4)
    cells = 5
    states = np.full((network.num_nodes, cells), 45.0) + rng.uniform(
        0, 5, size=(network.num_nodes, cells)
    )
    node_power = rng.uniform(0.0, 2.5, size=(network.num_nodes, cells))
    batched = solver.advance_nodes_batch(states, node_power, 1e-3)
    assert batched.shape == states.shape
    for c in range(cells):
        np.testing.assert_allclose(
            batched[:, c],
            solver.advance_nodes(states[:, c].copy(), node_power[:, c].copy(), 1e-3),
            rtol=1e-12,
            atol=1e-12,
        )
    with pytest.raises(ValueError):
        solver.advance_nodes_batch(states, node_power, 0.0)


# ----------------------------------------------------------------------
# Warm-up convergence and the 381 K emergency early exit
# ----------------------------------------------------------------------
def test_warmup_converges_for_moderate_power(network, solver):
    power = _power(network, watts=1.0)
    calls = []

    def power_at(temperatures):
        calls.append(max(temperatures.values()))
        return power

    state, temperatures = solver.warmup(power_at)
    # Constant power converges on the second iteration (delta == 0).
    assert len(calls) <= 3
    steady = solver.steady_state(power)
    for name, value in steady.items():
        assert temperatures[name] == pytest.approx(value)
    assert max(temperatures.values()) < network.config.emergency_limit_celsius


def test_warmup_exits_early_at_the_emergency_limit(network, solver):
    """Pathological power trips the 381 K (108 C) emergency limit early."""
    iterations = []

    def runaway_power(temperatures):
        iterations.append(1)
        return _power(network, watts=500.0)

    state, temperatures = solver.warmup(
        runaway_power,
        max_iterations=50,
        emergency_limit_celsius=network.config.emergency_limit_celsius,
    )
    assert max(temperatures.values()) >= network.config.emergency_limit_celsius
    # The fixed point stopped at the limit instead of iterating to the cap.
    assert len(iterations) < 50


def test_warmup_nodes_matches_dict_warmup(network, solver):
    """The array fast path and the mapping wrapper agree exactly."""
    power = {name: 0.8 + i * 0.05 for i, name in enumerate(network.block_names)}

    state_dict, temps_dict = solver.warmup(lambda temperatures: power)
    node_power = network.power_vector(power)
    state_nodes, block_temps = ThermalSolver(network).warmup_nodes(
        lambda state: node_power
    )
    np.testing.assert_array_equal(state_dict, state_nodes)
    for i, name in enumerate(network.block_names):
        assert temps_dict[name] == block_temps[i]


# ----------------------------------------------------------------------
# Dict/array equivalence of the power layers
# ----------------------------------------------------------------------
def test_power_model_array_and_dict_paths_agree():
    config = baseline_config()
    params = build_block_parameters(config)
    model_a = PowerModel(config.power, params)
    model_b = PowerModel(config.power, params)
    index = model_a.index
    rng = np.random.default_rng(5)
    counts = {name: int(rng.integers(0, 500)) for name in index.names}
    temps = {name: 45.0 + float(rng.uniform(0, 40)) for name in index.names}
    gated = [index.names[3], index.names[7]]

    breakdown = model_a.compute(counts, 800, temps, gated)
    dynamic_arr, leakage_arr = model_b.compute_arrays(
        index.array_from_mapping(counts).astype(np.int64),
        800,
        index.array_from_mapping(temps),
        index.mask(gated),
    )
    for i, name in enumerate(index.names):
        assert breakdown.dynamic[name] == dynamic_arr[i]
        assert breakdown.leakage[name] == leakage_arr[i]
    for name in gated:
        assert breakdown.dynamic[name] == 0.0
        assert breakdown.leakage[name] == 0.0


def test_activity_counters_array_drain_matches_dict_drain():
    counters_a = ActivityCounters(["A", "B", "C"])
    counters_b = ActivityCounters(["A", "B", "C"])
    for counters in (counters_a, counters_b):
        counters.record("A", 5)
        counters.record("C", 2)
    index = BlockIndex(["C", "A", "B"])  # deliberately different order
    as_dict = counters_a.end_interval()
    as_array = counters_b.end_interval_array(index)
    assert as_array.tolist() == [as_dict["C"], as_dict["A"], as_dict["B"]]
    # Draining resets both representations.
    assert counters_a.interval_counts() == {"A": 0, "B": 0, "C": 0}
    assert counters_b.end_interval_array(index).tolist() == [0, 0, 0]
    # Totals are unaffected by draining.
    assert counters_b.total_counts() == {"A": 5, "B": 0, "C": 2}

"""Unit and property-based tests for the floorplan builder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.presets import (
    bank_hopping_config,
    baseline_config,
    distributed_rename_commit_config,
)
from repro.power.energy import build_block_parameters
from repro.sim import blocks
from repro.thermal.floorplan import Block, Floorplan, build_floorplan


def _areas(config):
    return {name: p.area_mm2 for name, p in build_block_parameters(config).items()}


def _floorplan(config):
    return build_floorplan(config, _areas(config))


def test_block_geometry_helpers():
    a = Block("A", 0.0, 0.0, 1.0, 1.0)
    b = Block("B", 1.0, 0.0, 1.0, 2.0)
    c = Block("C", 5.0, 5.0, 1.0, 1.0)
    assert a.area == pytest.approx(1.0)
    assert a.center == (0.5, 0.5)
    assert a.shared_edge_length(b) == pytest.approx(1.0)
    assert b.shared_edge_length(a) == pytest.approx(1.0)
    assert a.shared_edge_length(c) == 0.0
    with pytest.raises(ValueError):
        Block("bad", 0, 0, 0.0, 1.0)


def test_floorplan_rejects_duplicates_and_empty():
    with pytest.raises(ValueError):
        Floorplan([])
    block = Block("A", 0, 0, 1, 1)
    with pytest.raises(ValueError):
        Floorplan([block, Block("A", 1, 0, 1, 1)])


def test_floorplan_contains_every_configured_block(config):
    plan = _floorplan(config)
    assert set(plan.block_names) == set(blocks.all_blocks(config))


def test_block_areas_match_requested_areas(config):
    areas = _areas(config)
    plan = build_floorplan(config, areas)
    for name, requested in areas.items():
        assert plan.block(name).area_mm2 == pytest.approx(requested, rel=1e-6)
    assert plan.die_area_mm2 == pytest.approx(sum(areas.values()), rel=1e-6)


def test_missing_area_raises(config):
    areas = _areas(config)
    del areas["UL2"]
    with pytest.raises(ValueError, match="UL2"):
        build_floorplan(config, areas)


def test_no_two_blocks_overlap(config):
    plan = _floorplan(config)
    blocks_ = plan.blocks()
    for i, a in enumerate(blocks_):
        for b in blocks_[i + 1:]:
            overlap_x = min(a.x + a.width, b.x + b.width) - max(a.x, b.x)
            overlap_y = min(a.y + a.height, b.y + b.height) - max(a.y, b.y)
            assert not (overlap_x > 1e-9 and overlap_y > 1e-9), (a.name, b.name)


def test_layout_follows_figure10_structure(config):
    plan = _floorplan(config)
    # The ROB row sits at the very top of the die.
    assert plan.block("ROB").y == pytest.approx(0.0)
    # The UL2 spans the full die width at the bottom.
    ul2 = plan.block("UL2")
    assert ul2.width == pytest.approx(plan.die_width, rel=1e-6)
    assert ul2.y + ul2.height == pytest.approx(plan.die_height, rel=1e-6)
    # The trace-cache banks sit in the frontend strip, above the clusters.
    assert plan.block("TC0").y < plan.block("C0_DL1").y
    # The rename table and trace-cache bank 0 share a row (Figure 10a).
    assert plan.block("RAT").y == pytest.approx(plan.block("TC0").y)


def test_bank_hopping_floorplan_follows_figure11():
    config = bank_hopping_config()
    plan = _floorplan(config)
    assert "TC2" in plan
    # Figure 11: the decoder shares a row with TC0, the RAT with TC1 and TC2.
    assert plan.block("DECO").y == pytest.approx(plan.block("TC0").y)
    assert plan.block("RAT").y == pytest.approx(plan.block("TC1").y)
    assert plan.block("RAT").y == pytest.approx(plan.block("TC2").y)


def test_distributed_floorplan_places_partitions_side_by_side():
    config = distributed_rename_commit_config()
    plan = _floorplan(config)
    rob0, rob1 = plan.block("ROB0"), plan.block("ROB1")
    assert rob0.y == pytest.approx(rob1.y)
    assert rob0.shared_edge_length(rob1) > 0.0


def test_adjacency_is_symmetric_and_nonempty(config):
    plan = _floorplan(config)
    adjacency = plan.adjacency()
    assert adjacency
    for a, b, shared in adjacency:
        assert shared > 0
        assert b in plan.neighbours(a)
        assert a in plan.neighbours(b)


def test_describe_lists_every_block(config):
    plan = _floorplan(config)
    text = plan.describe()
    for name in plan.block_names:
        assert name in text


@settings(max_examples=25, deadline=None)
@given(
    widths=st.lists(st.floats(0.2, 4.0), min_size=2, max_size=6),
    x=st.floats(0.0, 2.0),
)
def test_shared_edges_of_a_row_of_blocks_property(widths, x):
    """Property: consecutive blocks in a row share exactly their common height."""
    height = 1.5
    blocks_ = []
    cursor = x
    for i, width in enumerate(widths):
        blocks_.append(Block(f"B{i}", cursor, 0.0, width, height))
        cursor += width
    for left, right in zip(blocks_, blocks_[1:]):
        assert left.shared_edge_length(right) == pytest.approx(height)


# ----------------------------------------------------------------------
# Namespaced composition (the chip-multiprocessor layer)
# ----------------------------------------------------------------------
def test_namespaced_floorplan_preserves_geometry_and_order():
    from repro.thermal.floorplan import compose_floorplans

    config = baseline_config()
    params = build_block_parameters(config)
    plan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})
    renamed = plan.namespaced("core0")
    assert renamed.block_names == [f"core0.{n}" for n in plan.block_names]
    for a, b in zip(plan.blocks(), renamed.blocks()):
        assert (a.x, a.y, a.width, a.height) == (b.x, b.y, b.width, b.height)
    # One-core composition is a pure rename (bit-identical geometry).
    composed = compose_floorplans([plan], ["core0"])
    for a, b in zip(renamed.blocks(), composed.blocks()):
        assert (a.name, a.x, a.y, a.width, a.height) == (b.name, b.x, b.y, b.width, b.height)


def test_compose_floorplans_grid_placement_and_cross_core_adjacency():
    from repro.thermal.floorplan import compose_floorplans

    config = baseline_config()
    params = build_block_parameters(config)
    plan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})

    two = compose_floorplans([plan] * 2, ["core0", "core1"])
    assert two.die_width == pytest.approx(2 * plan.die_width)
    assert two.die_height == pytest.approx(plan.die_height)
    # Abutting dies share edges across the core boundary.
    cross = [
        (a, b)
        for a, b, _ in two.adjacency()
        if a.split(".", 1)[0] != b.split(".", 1)[0]
    ]
    assert cross

    four = compose_floorplans([plan] * 4, [f"core{c}" for c in range(4)])
    assert four.die_width == pytest.approx(2 * plan.die_width)
    assert four.die_height == pytest.approx(2 * plan.die_height)
    assert four.die_area == pytest.approx(4 * plan.die_area)

    three = compose_floorplans([plan] * 3, [f"core{c}" for c in range(3)])
    assert three.die_height == pytest.approx(2 * plan.die_height)


def test_compose_floorplans_validates_inputs():
    from repro.thermal.floorplan import compose_floorplans

    config = baseline_config()
    params = build_block_parameters(config)
    plan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})
    with pytest.raises(ValueError, match="at least one"):
        compose_floorplans([], [])
    with pytest.raises(ValueError, match="prefixes"):
        compose_floorplans([plan, plan], ["core0"])
    with pytest.raises(ValueError, match="unique"):
        compose_floorplans([plan, plan], ["core0", "core0"])
    with pytest.raises(ValueError, match="non-empty"):
        plan.namespaced("")


def test_block_index_namespacing_and_concat():
    from repro.sim.block_index import BlockIndex

    index = BlockIndex(["ROB", "RAT"])
    spaced = index.namespaced("core1")
    assert spaced.names == ("core1.ROB", "core1.RAT")
    chip = BlockIndex.concat([index.namespaced("core0"), index.namespaced("core1")])
    assert chip.position("core1.ROB") == 2
    with pytest.raises(ValueError):
        BlockIndex.concat([])
    with pytest.raises(ValueError):
        index.namespaced("")

"""Laplacian property tests for :class:`ThermalRCNetwork`.

The conductance matrix of a physically meaningful RC network is a weighted
graph Laplacian with exactly one ambient leak: symmetric, non-positive off
the diagonal (couplings are non-negative conductances), zero row sums on
every node except the sink, whose surplus is precisely the convection
conductance to ambient.  These invariants — checked here on randomized
floorplans and on composite multi-core dies — are what make an arbitrary
composition trustworthy: any floorplan that satisfies them yields a passive,
energy-conserving network, whatever its shape.
"""

import random

import numpy as np
import pytest

from repro.chip import build_chip_physics
from repro.core.presets import baseline_config
from repro.sim.config import ThermalConfig
from repro.thermal.floorplan import Block, Floorplan, compose_floorplans
from repro.thermal.rc_model import ThermalRCNetwork


def random_grid_floorplan(rng: random.Random) -> Floorplan:
    """A random MxN grid of blocks with random column widths and row heights."""
    columns = rng.randint(2, 5)
    rows = rng.randint(2, 5)
    widths = [rng.uniform(0.5e-3, 2.5e-3) for _ in range(columns)]
    heights = [rng.uniform(0.5e-3, 2.5e-3) for _ in range(rows)]
    blocks = []
    y = 0.0
    for r, height in enumerate(heights):
        x = 0.0
        for c, width in enumerate(widths):
            blocks.append(Block(name=f"b{r}_{c}", x=x, y=y, width=width, height=height))
            x += width
        y += height
    return Floorplan(blocks)


def assert_laplacian_invariants(network: ThermalRCNetwork) -> None:
    __tracebackhide__ = True
    g = network.conductance
    # Symmetry is exact: couplings are added pairwise.
    assert np.array_equal(g, g.T)
    # Off-diagonal entries are non-positive (non-negative conductances).
    off = g - np.diag(np.diag(g))
    assert (off <= 0.0).all()
    assert (np.diag(g) > 0.0).all()
    # Row sums vanish everywhere except the sink row, whose surplus is the
    # ambient (convection) conductance — the network's only leak.
    row_sums = g.sum(axis=1)
    scale = np.abs(g).max()
    for node in range(network.num_nodes):
        if node == network.sink_index:
            assert row_sums[node] == pytest.approx(
                1.0 / network.package.sink_to_ambient_resistance, rel=1e-9
            )
        else:
            assert abs(row_sums[node]) <= scale * 1e-9
    # Every node stores energy.
    assert (network.capacitance > 0.0).all()


@pytest.mark.parametrize("seed", range(6))
def test_randomized_floorplans_build_valid_laplacians(seed):
    rng = random.Random(seed)
    floorplan = random_grid_floorplan(rng)
    network = ThermalRCNetwork(floorplan, ThermalConfig())
    assert_laplacian_invariants(network)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("cores", [2, 4])
def test_composite_floorplans_build_valid_laplacians(seed, cores):
    """Namespaced grid composition preserves every Laplacian invariant."""
    rng = random.Random(100 + seed)
    sub = random_grid_floorplan(rng)
    composite = compose_floorplans(
        [sub] * cores, [f"core{c}" for c in range(cores)]
    )
    network = ThermalRCNetwork(composite, ThermalConfig())
    assert_laplacian_invariants(network)
    # Composition coupled the sub-dies: at least one cross-namespace edge.
    blocks_per_core = len(sub)
    cross = network.conductance[:blocks_per_core, blocks_per_core : 2 * blocks_per_core]
    assert (cross < 0.0).any()


def test_real_chip_network_is_a_valid_laplacian():
    physics, _, _ = build_chip_physics(baseline_config(), 4)
    assert_laplacian_invariants(physics.network)


def test_single_core_network_is_a_valid_laplacian():
    physics, _, _ = build_chip_physics(baseline_config(), 1)
    assert_laplacian_invariants(physics.network)


# ----------------------------------------------------------------------
# Sparse assembly (the solver's CSC backend input)
# ----------------------------------------------------------------------
def _scipy_or_skip():
    return pytest.importorskip("scipy.sparse")


def assert_sparse_matches_dense(network: ThermalRCNetwork) -> None:
    """The CSC assembly agrees with the dense Laplacian entrywise."""
    __tracebackhide__ = True
    _scipy_or_skip()
    g_sparse = network.conductance_sparse()
    dense = g_sparse.toarray()
    np.testing.assert_allclose(
        dense, network.conductance, rtol=1e-12, atol=0.0
    )
    # The sparse invariants mirror the dense ones without densifying:
    # symmetry, non-positive off-diagonals, one ambient leak.
    assert (g_sparse - g_sparse.T).nnz == 0
    coo = g_sparse.tocoo()
    off_diag = coo.row != coo.col
    assert (coo.data[off_diag] <= 0.0).all()
    row_sums = np.asarray(g_sparse.sum(axis=1)).ravel()
    scale = np.abs(coo.data).max()
    expected = np.zeros(network.num_nodes)
    expected[network.sink_index] = 1.0 / network.package.sink_to_ambient_resistance
    np.testing.assert_allclose(row_sums, expected, atol=scale * 1e-9)


@pytest.mark.parametrize("seed", range(6))
def test_randomized_sparse_assembly_matches_dense(seed):
    rng = random.Random(seed)
    floorplan = random_grid_floorplan(rng)
    network = ThermalRCNetwork(floorplan, ThermalConfig())
    assert_sparse_matches_dense(network)


@pytest.mark.parametrize("cores", [1, 2, 4])
def test_composite_sparse_assembly_matches_dense(cores):
    physics, _, _ = build_chip_physics(baseline_config(), cores)
    assert_sparse_matches_dense(physics.network)


def test_sparsity_grows_with_core_count():
    """Wider dies are emptier: density falls monotonically with core count.

    This is the scaling fact the sparse backend exists for — lateral
    coupling is local, so nonzeros grow linearly while the dense matrix
    grows quadratically.
    """
    _scipy_or_skip()
    densities = []
    for cores in (1, 2, 4, 8):
        physics, _, _ = build_chip_physics(baseline_config(), cores)
        g_sparse = physics.network.conductance_sparse()
        n = physics.network.num_nodes
        densities.append(g_sparse.nnz / n**2)
    assert all(a > b for a, b in zip(densities, densities[1:])), densities
    # By 8 cores the composite Laplacian is overwhelmingly zeros.
    assert densities[-1] < 0.10

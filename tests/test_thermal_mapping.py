"""Unit and property-based tests for the bank mapping functions (Section 3.2.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.thermal_mapping import (
    BalancedMappingPolicy,
    BankMappingTable,
    ThermalAwareMappingPolicy,
    trace_address_hash,
)


def test_hash_is_within_range_and_deterministic():
    for address in (0x0, 0x1234_5678, 0xFFFF_FFFF, 0x4000_0040):
        value = trace_address_hash(address)
        assert 0 <= value < 32
        assert value == trace_address_hash(address)
    with pytest.raises(ValueError):
        trace_address_hash(0x100, bits=0)


def test_hash_spreads_addresses_over_combinations():
    values = {trace_address_hash(0x4000_0000 + 4 * i) for i in range(4096)}
    assert len(values) == 32


def test_balanced_table_assigns_equal_shares():
    table = BankMappingTable(32, [0, 1])
    counts = table.entries_per_bank()
    assert counts == {0: 16, 1: 16}
    # Consecutive assignment, as in Figure 9.
    assert table.entries[:16] == [0] * 16
    assert table.entries[16:] == [1] * 16


def test_balanced_table_handles_non_divisible_counts():
    table = BankMappingTable(32, [0, 1, 2])
    counts = table.entries_per_bank()
    assert sum(counts.values()) == 32
    assert max(counts.values()) - min(counts.values()) <= 1


def test_set_assignment_validation():
    table = BankMappingTable(32, [0, 1])
    with pytest.raises(ValueError):
        table.set_assignment({0: 10, 1: 10})
    with pytest.raises(ValueError):
        table.set_assignment({0: 33, 1: -1})


def test_bank_for_respects_assignment():
    table = BankMappingTable(32, [0, 1])
    table.set_assignment({0: 32, 1: 0})
    for address in range(0, 0x1000, 0x40):
        assert table.bank_for(address) == 0
    assert table.bank_for_combination(31) == 0


def test_balanced_policy_ignores_temperature():
    policy = BalancedMappingPolicy(32)
    shares = policy.compute_shares([0, 1], {0: 90.0, 1: 60.0})
    assert shares == {0: 16, 1: 16}


def test_thermal_policy_gives_colder_banks_more_entries():
    policy = ThermalAwareMappingPolicy(32, bias_threshold_celsius=3.0)
    shares = policy.compute_shares([0, 1], {0: 93.0, 1: 87.0})
    assert sum(shares.values()) == 32
    assert shares[1] > shares[0]
    # 6 C difference = two halvings relative to the other bank: roughly 4x.
    assert shares[1] >= shares[0] * 3


def test_thermal_policy_equal_temperatures_is_balanced():
    policy = ThermalAwareMappingPolicy(32, 3.0)
    shares = policy.compute_shares([0, 1, 2], {0: 80.0, 1: 80.0, 2: 80.0})
    assert sum(shares.values()) == 32
    assert max(shares.values()) - min(shares.values()) <= 1


def test_thermal_policy_never_starves_a_bank():
    policy = ThermalAwareMappingPolicy(32, 3.0)
    shares = policy.compute_shares([0, 1], {0: 120.0, 1: 60.0})
    assert shares[0] >= 1
    assert sum(shares.values()) == 32


def test_thermal_policy_validation():
    with pytest.raises(ValueError):
        ThermalAwareMappingPolicy(32, bias_threshold_celsius=0.0)
    policy = ThermalAwareMappingPolicy(32, 3.0)
    with pytest.raises(ValueError):
        policy.compute_shares([], {})


@settings(max_examples=60, deadline=None)
@given(
    temps=st.lists(st.floats(50.0, 120.0), min_size=2, max_size=4),
    threshold=st.floats(0.5, 10.0),
    entries=st.integers(8, 64),
)
def test_thermal_policy_properties(temps, threshold, entries):
    """Property: shares always sum to the table size, every enabled bank gets
    at least one entry, and the coldest bank never gets fewer entries than
    the hottest bank."""
    banks = list(range(len(temps)))
    temperatures = dict(enumerate(temps))
    policy = ThermalAwareMappingPolicy(entries, threshold)
    shares = policy.compute_shares(banks, temperatures)
    assert sum(shares.values()) == entries
    assert all(share >= 1 for share in shares.values())
    coldest = min(banks, key=lambda b: temperatures[b])
    hottest = max(banks, key=lambda b: temperatures[b])
    assert shares[coldest] >= shares[hottest]


@settings(max_examples=30, deadline=None)
@given(shares0=st.integers(1, 31))
def test_mapping_table_share_assignment_property(shares0):
    """Property: the installed assignment always matches the requested shares."""
    table = BankMappingTable(32, [0, 1])
    table.set_assignment({0: shares0, 1: 32 - shares0})
    counts = table.entries_per_bank()
    assert counts.get(0, 0) == shares0
    assert counts.get(1, 0) == 32 - shares0

"""Unit tests for the thermal package, RC network and solvers."""

import numpy as np
import pytest

from repro.power.energy import build_block_parameters
from repro.sim.config import ThermalConfig
from repro.thermal.floorplan import build_floorplan
from repro.thermal.package import COPPER, SILICON, TIM, MaterialProperties, PackageProperties
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.solver import ThermalSolver


@pytest.fixture(scope="module")
def network():
    from repro.core.presets import baseline_config

    config = baseline_config()
    params = build_block_parameters(config)
    floorplan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})
    return ThermalRCNetwork(floorplan, config.thermal)


@pytest.fixture(scope="module")
def solver(network):
    return ThermalSolver(network)


# ----------------------------------------------------------------------
# Package
# ----------------------------------------------------------------------
def test_material_properties_are_physical():
    for material in (SILICON, COPPER, TIM):
        assert material.conductivity > 0
        assert material.volumetric_heat_capacity > 0
    assert COPPER.conductivity > SILICON.conductivity > TIM.conductivity
    with pytest.raises(ValueError):
        MaterialProperties("bad", conductivity=-1, volumetric_heat_capacity=1)


def test_package_from_paper_geometry():
    package = PackageProperties.from_config(ThermalConfig(), die_area_m2=1e-4)
    assert package.sink_to_ambient_resistance == ThermalConfig().convection_resistance_k_per_w
    assert package.spreader_to_sink_resistance > 0
    # The heat sink stores far more heat than the spreader (it is much bigger).
    assert package.sink_capacitance > package.spreader_capacitance
    with pytest.raises(ValueError):
        PackageProperties.from_config(ThermalConfig(), die_area_m2=0.0)


# ----------------------------------------------------------------------
# RC network structure
# ----------------------------------------------------------------------
def test_network_has_block_spreader_and_sink_nodes(network):
    assert network.num_nodes == network.num_blocks + 2
    assert network.conductance.shape == (network.num_nodes, network.num_nodes)
    assert network.capacitance.shape == (network.num_nodes,)
    assert np.all(network.capacitance > 0)


def test_conductance_matrix_is_symmetric_with_positive_diagonal(network):
    g = network.conductance
    assert np.allclose(g, g.T)
    assert np.all(np.diag(g) > 0)
    # Off-diagonal entries are non-positive (Laplacian structure).
    off_diag = g - np.diag(np.diag(g))
    assert np.all(off_diag <= 1e-12)


def test_power_vector_maps_blocks_to_nodes(network):
    power = {name: 1.0 for name in network.block_names}
    vector = network.power_vector(power)
    assert vector[: network.num_blocks].sum() == pytest.approx(len(network.block_names))
    assert vector[network.spreader_index] == 0.0
    with pytest.raises(KeyError):
        network.power_vector({"NOPE": 1.0})


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
def test_zero_power_steady_state_is_ambient(network, solver):
    temperatures = solver.steady_state({name: 0.0 for name in network.block_names})
    for value in temperatures.values():
        assert value == pytest.approx(network.config.ambient_celsius, abs=1e-6)


def test_steady_state_total_rise_matches_total_resistance(network, solver):
    """With power only at the sink-facing path, the average die temperature
    rise must equal total power times the package resistance (energy
    conservation through the series package path)."""
    total_power = 50.0
    per_block = total_power / network.num_blocks
    temperatures = solver.steady_state({n: per_block for n in network.block_names})
    package = network.package
    expected_sink_rise = total_power * package.sink_to_ambient_resistance
    # Every block must be at least as hot as the sink.
    sink_temperature = network.config.ambient_celsius + expected_sink_rise
    assert min(temperatures.values()) > sink_temperature - 1e-6


def test_hotter_block_for_higher_power_density(network, solver):
    power = {name: 0.5 for name in network.block_names}
    power["RAT"] = 8.0
    temperatures = solver.steady_state(power)
    assert temperatures["RAT"] == max(temperatures.values())
    assert temperatures["RAT"] > temperatures["UL2"]


def test_transient_approaches_steady_state(network, solver):
    power = {name: 1.0 for name in network.block_names}
    power["ROB"] = 6.0
    steady = solver.steady_state(power)
    state = network.uniform_state(network.config.ambient_celsius)
    for _ in range(30):
        state = solver.advance(state, power, dt_seconds=0.05)
    final = solver.block_temperatures(state)
    # After 1.5 s the die blocks are close to their steady-state values
    # (the heat sink itself warms much more slowly).
    assert final["ROB"] > 0.5 * (steady["ROB"] - network.config.ambient_celsius) + network.config.ambient_celsius


def test_transient_is_monotone_towards_steady_state(network, solver):
    power = {name: 2.0 for name in network.block_names}
    state = network.uniform_state(network.config.ambient_celsius)
    previous = state
    for _ in range(5):
        state = solver.advance(previous, power, dt_seconds=1e-3)
        assert np.all(state >= previous - 1e-9)  # heating, never cooling
        previous = state


def test_transient_requires_positive_dt(network, solver):
    state = network.uniform_state(45.0)
    with pytest.raises(ValueError):
        solver.advance(state, {n: 1.0 for n in network.block_names}, dt_seconds=0.0)


def test_warmup_converges_and_respects_emergency_limit(network, solver):
    def power_at(temperatures):
        # Mild temperature dependence, far from runaway.
        return {name: 1.0 + 0.001 * (temperatures[name] - 45.0) for name in network.block_names}

    state, temperatures = solver.warmup(power_at)
    assert max(temperatures.values()) < network.config.emergency_limit_celsius
    assert min(temperatures.values()) > network.config.ambient_celsius
    assert state.shape == (network.num_nodes,)

"""Unit tests for thermal sensors and the temperature-metric helpers."""

import pytest

from repro.thermal.metrics import reduction_over_baseline, temperature_metrics_from_history
from repro.thermal.sensors import SensorBank, ThermalSensor


# ----------------------------------------------------------------------
# Sensors
# ----------------------------------------------------------------------
def test_sensor_quantizes_readings():
    sensor = ThermalSensor("TC0", quantization_celsius=0.5)
    assert sensor.read({"TC0": 81.26}) == pytest.approx(81.5)
    assert sensor.last_reading == pytest.approx(81.5)
    exact = ThermalSensor("TC0", quantization_celsius=0.0)
    assert exact.read({"TC0": 81.26}) == pytest.approx(81.26)


def test_sensor_rejects_negative_quantization():
    with pytest.raises(ValueError):
        ThermalSensor("TC0", quantization_celsius=-1.0)


def test_sensor_bank_reads_every_block_and_finds_hottest():
    bank = SensorBank(["TC0", "TC1", "TC2"], quantization_celsius=0.0)
    temps = {"TC0": 80.0, "TC1": 95.0, "TC2": 70.0}
    readings = bank.read_all(temps)
    assert readings == temps
    assert bank.hottest(temps) == "TC1"
    with pytest.raises(ValueError):
        SensorBank([])


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_metrics_from_history():
    history = [
        {"A": 85.0, "B": 65.0},
        {"A": 95.0, "B": 55.0},
    ]
    metrics = temperature_metrics_from_history(history, ["A", "B"], ambient_celsius=45.0)
    assert metrics["AbsMax"] == pytest.approx(50.0)
    assert metrics["AvgMax"] == pytest.approx(45.0)
    assert metrics["Average"] == pytest.approx(30.0)


def test_metrics_require_history_and_blocks():
    with pytest.raises(ValueError):
        temperature_metrics_from_history([], ["A"])
    with pytest.raises(ValueError):
        temperature_metrics_from_history([{"A": 50.0}], [])


def test_reduction_over_baseline():
    baseline = {"AbsMax": 60.0, "Average": 30.0}
    improved = {"AbsMax": 40.0, "Average": 30.0}
    reductions = reduction_over_baseline(baseline, improved)
    assert reductions["AbsMax"] == pytest.approx(1 / 3)
    assert reductions["Average"] == 0.0


def test_reduction_handles_zero_baseline_and_missing_metric():
    assert reduction_over_baseline({"AbsMax": 0.0}, {"AbsMax": 1.0})["AbsMax"] == 0.0
    with pytest.raises(KeyError):
        reduction_over_baseline({"AbsMax": 1.0}, {})

"""Unit tests for the text-mode thermal visualization helpers."""

import pytest

from repro.core.presets import baseline_config
from repro.power.energy import build_block_parameters
from repro.thermal.floorplan import build_floorplan
from repro.thermal.visualization import (
    GLYPH_RAMP,
    render_block_bar_chart,
    render_temperature_timeline,
    render_thermal_map,
)


@pytest.fixture(scope="module")
def floorplan():
    config = baseline_config()
    params = build_block_parameters(config)
    return build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})


def test_thermal_map_dimensions_and_legend(floorplan):
    temperatures = {name: 70.0 for name in floorplan.block_names}
    temperatures["RAT"] = 105.0
    art = render_thermal_map(floorplan, temperatures, width=40, height=12)
    lines = art.splitlines()
    assert len(lines) == 13  # grid plus legend
    assert all(len(line) == 40 for line in lines[:-1])
    assert "105.0" in lines[-1] and "70.0" in lines[-1]
    # The hottest glyph appears somewhere (the RAT region).
    assert GLYPH_RAMP[-1] in art


def test_thermal_map_requires_all_blocks(floorplan):
    with pytest.raises(KeyError):
        render_thermal_map(floorplan, {"RAT": 80.0}, width=10, height=5)
    with pytest.raises(ValueError):
        render_thermal_map(floorplan, {n: 70.0 for n in floorplan.block_names}, width=0)


def test_uniform_temperatures_render_without_error(floorplan):
    temperatures = {name: 85.0 for name in floorplan.block_names}
    art = render_thermal_map(floorplan, temperatures, width=20, height=8)
    assert "85.0" in art


def test_bar_chart_orders_and_truncates():
    chart = render_block_bar_chart({"A": 1.0, "B": 3.0, "C": 2.0}, title="power",
                                   width=10, top_n=2, unit=" W")
    lines = chart.splitlines()
    assert lines[0] == "power"
    assert lines[1].startswith("B") and lines[2].startswith("C")
    assert "A" not in chart.split("\n", 1)[1].split()[0]
    with pytest.raises(ValueError):
        render_block_bar_chart({})


def test_timeline_sparkline_reflects_range():
    history = [{"ROB": 60.0 + i} for i in range(10)]
    line = render_temperature_timeline(history, "ROB", width=20)
    assert line.startswith("ROB:")
    assert "60.0" in line and "69.0" in line
    with pytest.raises(ValueError):
        render_temperature_timeline([], "ROB")


def test_timeline_downsamples_long_histories():
    history = [{"ROB": 60.0 + (i % 7)} for i in range(500)]
    line = render_temperature_timeline(history, "ROB", width=40)
    # The sparkline body is bounded by the requested width.
    body = line.split(":", 1)[1].split("(")[0].strip()
    assert len(body) <= 40


# ----------------------------------------------------------------------
# PNG die heatmaps (multi-core composition aware)
# ----------------------------------------------------------------------
def _png_dimensions(data: bytes):
    import struct

    assert data[:8] == b"\x89PNG\r\n\x1a\n"
    assert data[12:16] == b"IHDR"
    return struct.unpack(">II", data[16:24])


def test_two_core_composite_heatmap_renders_to_png(tmp_path):
    """Smoke: the 2-core composite floorplan renders to a real PNG file."""
    from repro.chip import build_chip_physics
    from repro.thermal.visualization import save_heatmap_png

    physics, _, _ = build_chip_physics(baseline_config(), 2)
    floorplan = physics.floorplan
    # A per-core gradient so both the ramp and the outlines exercise.
    temperatures = {
        name: (95.0 if name.startswith("core0.") else 55.0) + i * 0.1
        for i, name in enumerate(floorplan.block_names)
    }
    path = save_heatmap_png(floorplan, temperatures, tmp_path / "chip.png", width_px=160)
    data = path.read_bytes()
    width, height = _png_dimensions(data)
    assert width == 160
    expected_height = round(floorplan.die_height / floorplan.die_width * 160)
    assert abs(height - expected_height) <= 1
    assert data.endswith(b"IEND\xaeB`\x82")


def test_heatmap_pixels_mark_core_outlines_and_ramp():
    from repro.chip import build_chip_physics
    from repro.thermal.visualization import render_heatmap_pixels

    physics, _, _ = build_chip_physics(baseline_config(), 2)
    floorplan = physics.floorplan
    temperatures = {
        name: 95.0 if name.startswith("core0.") else 55.0
        for name in floorplan.block_names
    }
    pixels = render_heatmap_pixels(floorplan, temperatures, width_px=120)
    flat = [pixel for row in pixels for pixel in row]
    assert (0, 0, 0) in flat  # core outlines
    reds = [r for r, g, b in flat if r > 150 and b < 80]
    blues = [b for r, g, b in flat if b > 150 and r < 80]
    assert reds and blues  # both ends of the ramp are on the die


def test_single_core_heatmap_has_no_core_outline(floorplan):
    from repro.thermal.visualization import render_heatmap_pixels

    temperatures = {name: 70.0 for name in floorplan.block_names}
    pixels = render_heatmap_pixels(floorplan, temperatures, width_px=80)
    flat = [pixel for row in pixels for pixel in row]
    assert (0, 0, 0) not in flat

"""Unit tests for the sub-banked trace cache."""

import pytest

from repro.frontend.trace_cache import TraceCache
from repro.sim.config import TraceCacheConfig


def _cache(**kwargs) -> TraceCache:
    config = TraceCacheConfig(**kwargs)
    return TraceCache(config, ul2_hit_latency=12)


def test_first_access_misses_then_hits():
    cache = _cache()
    first = cache.access(0x1000)
    assert not first.hit and first.ul2_access
    assert first.latency == 12 + TraceCache.TRACE_BUILD_OVERHEAD
    second = cache.access(0x1000)
    assert second.hit and second.latency == 0
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_mapping_is_stable_for_the_same_address():
    cache = _cache()
    assert cache.bank_for(0x2340) == cache.bank_for(0x2340)


def test_contents_are_non_overlapping_across_banks():
    cache = _cache()
    address = 0x4321_0
    bank = cache.bank_for(address)
    cache.access(address)
    occupancy = cache.occupancy()
    assert occupancy[bank] == 1
    assert sum(occupancy.values()) == 1


def test_lru_eviction_within_a_set():
    cache = _cache(capacity_uops=256, line_uops=16, associativity=2, active_banks=1,
                   physical_banks=1)
    sets = cache.config.sets_per_bank
    conflict = [0x1000 + i * sets * 16 for i in range(3)]
    for address in conflict:
        cache.access(address)
    # The first line was evicted by the third (2-way set).
    result = cache.access(conflict[0])
    assert not result.hit


def test_gating_flushes_contents_and_redirects_mapping():
    cache = _cache(physical_banks=3, bank_hopping=True)
    addresses = [0x100 * i for i in range(1, 30)]
    for address in addresses:
        cache.access(address)
    before = sum(cache.occupancy().values())
    assert before > 0
    cache.set_enabled_banks([0, 1])
    assert cache.gated_banks() == [2]
    assert cache.occupancy()[2] == 0
    cache.set_balanced_mapping()
    assert all(bank in (0, 1) for bank in cache.mapping.entries)


def test_gated_bank_is_never_accessed():
    cache = _cache(physical_banks=3, bank_hopping=True)
    cache.set_enabled_banks([0, 2])
    cache.set_balanced_mapping()
    for address in range(0, 0x4000, 0x40):
        result = cache.access(address)
        assert result.bank != 1


def test_set_mapping_shares_rejects_gated_banks():
    cache = _cache(physical_banks=3, bank_hopping=True)
    cache.set_enabled_banks([0, 1])
    with pytest.raises(ValueError):
        cache.set_mapping_shares({0: 10, 1: 10, 2: 12})
    cache.set_mapping_shares({0: 20, 1: 12})
    shares = cache.accesses_per_bank_share()
    assert shares[0] == pytest.approx(20 / 32)
    assert shares[2] == 0.0


def test_set_enabled_banks_requires_at_least_one():
    cache = _cache()
    with pytest.raises(ValueError):
        cache.set_enabled_banks([])


def test_hop_flush_counter_counts_lost_lines():
    cache = _cache(physical_banks=3, bank_hopping=True)
    for address in range(0, 0x2000, 0x40):
        cache.access(address)
    lost_bank = 0
    lines_in_bank = cache.occupancy()[lost_bank]
    cache.set_enabled_banks([1, 2])
    assert cache.hop_flushes == lines_in_bank

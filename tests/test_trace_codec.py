"""Binary activity-trace codec: round-trip, cache integration, fallback.

Traces are cached as compact ``*.trace.bin`` artifacts (zlib-compressed
struct/array payload behind the ``RTRC`` magic).  The codec must round-trip
every field bit-exactly — a replayed trace feeds the bit-identical exact
replay path — and the cache must keep serving ``*.trace.json`` artifacts
written by older releases, while treating corrupt binary blobs as misses
rather than errors.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.campaign.cache import TRACE_BIN_SUFFIX, ResultCache
from repro.campaign.executors import execute_cell_capture
from repro.campaign.spec import RunSpec
from repro.core.presets import bank_hopping_config, baseline_config
from repro.sim.activity_trace import (
    TRACE_BIN_MAGIC,
    TRACE_BIN_VERSION,
    ActivityTrace,
)


def _capture(config, uops=2_000, interval_cycles=800):
    from repro.campaign import scale_paper_intervals

    spec = RunSpec(
        config=scale_paper_intervals(config, interval_cycles),
        benchmark="gzip",
        trace_uops=uops,
        interval_cycles=interval_cycles,
        seed=7,
    )
    _, trace = execute_cell_capture(spec)
    return spec, trace


@pytest.fixture(scope="module")
def captured():
    return _capture(baseline_config())


@pytest.fixture(scope="module")
def captured_hopping():
    return _capture(bank_hopping_config())


def _assert_traces_equal(a: ActivityTrace, b: ActivityTrace) -> None:
    assert a.to_json() == b.to_json()
    assert a.benchmark == b.benchmark
    assert a.block_names == b.block_names
    assert a.interval_cycles == b.interval_cycles
    np.testing.assert_array_equal(a.counts, b.counts)
    np.testing.assert_array_equal(a.cycles, b.cycles)
    np.testing.assert_array_equal(a.end_cycles, b.end_cycles)
    if a.gated_masks is None:
        assert b.gated_masks is None
    else:
        np.testing.assert_array_equal(a.gated_masks, b.gated_masks)
    assert a.stats == b.stats
    assert a.provenance == b.provenance


def test_bytes_round_trip(captured):
    _, trace = captured
    blob = trace.to_bytes()
    assert blob.startswith(TRACE_BIN_MAGIC)
    assert blob[len(TRACE_BIN_MAGIC)] == TRACE_BIN_VERSION
    _assert_traces_equal(ActivityTrace.from_bytes(blob), trace)


def test_bytes_round_trip_with_gated_masks(captured_hopping):
    _, trace = captured_hopping
    assert trace.gated_masks is not None and trace.gated_masks.any()
    _assert_traces_equal(ActivityTrace.from_bytes(trace.to_bytes()), trace)


def test_binary_is_smaller_than_json(captured):
    _, trace = captured
    assert len(trace.to_bytes()) < len(trace.to_json().encode())


def test_save_load_bytes(tmp_path, captured):
    _, trace = captured
    path = trace.save_bytes(tmp_path / "t.trace.bin")
    assert path.read_bytes().startswith(TRACE_BIN_MAGIC)
    _assert_traces_equal(ActivityTrace.load_bytes(path), trace)


def test_pickle_uses_binary_codec(captured):
    _, trace = captured
    clone = pickle.loads(pickle.dumps(trace))
    _assert_traces_equal(clone, trace)
    # __reduce__ routes through the codec: re-encoding is byte-stable.
    assert clone.to_bytes() == trace.to_bytes()


def test_from_bytes_rejects_bad_magic_and_version(captured):
    _, trace = captured
    blob = trace.to_bytes()
    with pytest.raises(ValueError):
        ActivityTrace.from_bytes(b"NOPE" + blob[4:])
    bumped = bytearray(blob)
    bumped[len(TRACE_BIN_MAGIC)] = TRACE_BIN_VERSION + 1
    with pytest.raises(ValueError):
        ActivityTrace.from_bytes(bytes(bumped))


def test_cache_stores_binary_artifacts(tmp_path, captured):
    spec, trace = captured
    cache = ResultCache(tmp_path)
    path = cache.store_trace(spec.timing_key(), trace)
    assert path.name.endswith(TRACE_BIN_SUFFIX)
    loaded = cache.load_trace(spec.timing_key())
    assert loaded is not None
    _assert_traces_equal(loaded, trace)
    assert cache.trace_hits == 1 and cache.trace_misses == 0


def test_cache_serves_legacy_json_traces(tmp_path, captured):
    """A cache populated by an older release (*.trace.json) still hits."""
    spec, trace = captured
    cache = ResultCache(tmp_path)
    legacy = cache._legacy_trace_path(cache.trace_path_for(spec.timing_key()))
    trace.save(legacy)
    assert json.loads(legacy.read_text())  # really is JSON on disk
    loaded = cache.load_trace(spec.timing_key())
    assert loaded is not None
    _assert_traces_equal(loaded, trace)
    assert cache.trace_hits == 1


def test_cache_treats_corrupt_blob_as_miss(tmp_path, captured):
    spec, trace = captured
    cache = ResultCache(tmp_path)
    path = cache.trace_path_for(spec.timing_key())
    blob = trace.to_bytes()
    path.write_bytes(blob[: len(blob) // 2])  # truncated zlib stream
    assert cache.load_trace(spec.timing_key()) is None
    assert cache.trace_misses == 1
    path.write_bytes(b"garbage that is not a trace at all")
    assert cache.load_trace(spec.timing_key()) is None
    assert cache.trace_misses == 2

"""Unit tests for the dynamic micro-op record and FU/scheduler block mapping."""

from repro.backend.functional_units import (
    fu_block_suffix,
    register_file_block_suffix,
    scheduler_block_suffix,
)
from repro.backend.register_file import PhysicalRegisterFile
from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterSpace
from repro.sim import blocks
from repro.sim.uop import DynamicUop, UopState

SPACE = RegisterSpace()


def test_dynamic_uop_exposes_static_properties():
    static = MicroOp(pc=0x80, uop_class=UopClass.LOAD, dest=SPACE.int_reg(1), mem_addr=256)
    dynamic = DynamicUop(static, seq=7)
    assert dynamic.is_load and dynamic.is_mem and not dynamic.is_store
    assert not dynamic.is_fp and not dynamic.is_branch
    assert dynamic.latency == static.latency
    assert dynamic.state is UopState.FETCHED
    assert dynamic.seq == 7


def test_sources_ready_checks_every_renamed_source():
    rf = PhysicalRegisterFile("IRF", 8)
    static = MicroOp(pc=0, uop_class=UopClass.IALU, dest=SPACE.int_reg(0))
    dynamic = DynamicUop(static, 0)
    early = rf.allocate()
    late = rf.allocate()
    rf.set_ready(early, 5)
    rf.set_ready(late, 20)
    dynamic.src_refs = [(rf, early), (rf, late)]
    assert not dynamic.sources_ready(10)
    assert dynamic.sources_ready(20)
    no_sources = DynamicUop(static, 1)
    assert no_sources.sources_ready(0)


def test_fu_block_mapping():
    assert fu_block_suffix(UopClass.IALU) == blocks.CLUSTER_INT_FU
    assert fu_block_suffix(UopClass.LOAD) == blocks.CLUSTER_INT_FU
    assert fu_block_suffix(UopClass.STORE) == blocks.CLUSTER_INT_FU
    assert fu_block_suffix(UopClass.BRANCH) == blocks.CLUSTER_INT_FU
    assert fu_block_suffix(UopClass.FPADD) == blocks.CLUSTER_FP_FU
    assert fu_block_suffix(UopClass.FPDIV) == blocks.CLUSTER_FP_FU


def test_scheduler_block_mapping():
    assert scheduler_block_suffix(UopClass.IALU) == blocks.CLUSTER_INT_SCHED
    assert scheduler_block_suffix(UopClass.FPMUL) == blocks.CLUSTER_FP_SCHED
    assert scheduler_block_suffix(UopClass.COPY) == blocks.CLUSTER_COPY_SCHED
    assert scheduler_block_suffix(UopClass.LOAD) == blocks.CLUSTER_MOB
    assert scheduler_block_suffix(UopClass.STORE) == blocks.CLUSTER_MOB


def test_register_file_block_mapping():
    assert register_file_block_suffix(is_fp=False) == blocks.CLUSTER_INT_RF
    assert register_file_block_suffix(is_fp=True) == blocks.CLUSTER_FP_RF

"""The warm worker runtime: persistent pool workers, warm-cache lifecycle,
zero-copy trace transport, and the busy-time utilization integral.

These tests pin the tentpole guarantees of the persistent-worker pool:

* process-mode workers are spawned once and fed task after task (same PID),
  and their worker-resident warm cache survives across tasks;
* a worker killed mid-task — by the watchdog timeout or by SIGKILL — is
  respawned with an EMPTY warm cache, the task follows the existing retry
  policy (crashes retry, timeouts do not), and the pool stays usable;
* shared-memory / mmap trace transport round-trips traces byte-identically
  and leaves no leaked ``/dev/shm`` segments or temp files after the
  fan-out drains;
* pool-executed replay groups stay byte-identical to the serial path;
* ``utilization`` is a busy-time integral over the pool lifetime, not an
  instantaneous snapshot that is always 0 by the time it is read.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time

import pytest

from repro.campaign import Campaign, ExperimentSettings
from repro.campaign.cache import ResultCache
from repro.campaign.executors import (
    ExecutorTaskError,
    execute_cell_capture,
    execute_replay_group,
)
from repro.core.presets import baseline_config
from repro.service.manager import PoolBackedExecutor
from repro.service.pool import WorkerPool
from repro.sim.serialization import result_to_dict
from repro.sim.warmcache import (
    TraceRef,
    publish_trace,
    warm_cache,
)

SHM_DIR = "/dev/shm"


# ----------------------------------------------------------------------
# Module-level task functions (pickled into worker processes)
# ----------------------------------------------------------------------
def _pid(task):
    return os.getpid()


def _warm_put(task):
    """Plant a sentinel in this worker's warm trace registry."""
    warm_cache().put_trace("runtime-test-sentinel", "planted")
    return os.getpid()


def _warm_probe(task):
    """(pid, sentinel still present?) of the executing worker."""
    return os.getpid(), warm_cache().get_trace("runtime-test-sentinel") is not None


def _sigkill_unless_marker(task):
    """SIGKILL this worker until a marker file exists (made on attempt 1)."""
    marker = task
    if os.path.exists(marker):
        return os.getpid()
    open(marker, "w").close()
    os.kill(os.getpid(), signal.SIGKILL)


def _sigkill_always(task):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_long(task):
    time.sleep(60)


def _nap(task):
    time.sleep(task)
    return task


# ----------------------------------------------------------------------
# Shared fixtures: one tiny captured trace + power-variant specs
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def captured():
    settings = ExperimentSettings(benchmarks=("gzip",), uops_per_benchmark=1_200, seed=3)
    spec = Campaign.single(baseline_config(), settings).cells()[0]
    _, trace = execute_cell_capture(spec)
    return spec, trace


def _power_variants(spec, count):
    """Physics-side variants sharing the spec's timing key (and trace)."""
    variants = []
    for index in range(count):
        config = dataclasses.replace(
            spec.config,
            name=f"variant_{index}",
            power=dataclasses.replace(
                spec.config.power,
                leakage_fraction_at_ambient=0.20 + 0.05 * index,
            ),
        )
        variants.append(dataclasses.replace(spec, config=config))
    return variants


def _shm_listing():
    if not os.path.isdir(SHM_DIR):
        return None
    return sorted(os.listdir(SHM_DIR))


# ----------------------------------------------------------------------
# Persistent workers
# ----------------------------------------------------------------------
def test_persistent_worker_runs_many_tasks_in_one_process():
    pool = WorkerPool(workers=1, mode="process")
    try:
        pids = {pool.submit(_pid, None).result(timeout=30) for _ in range(4)}
        assert len(pids) == 1, "keepalive worker must persist across tasks"
        assert pids != {os.getpid()}, "process mode must not run inline"
        metrics = pool.metrics()
        assert metrics["keepalive"] is True
        assert metrics["worker_respawns"] == 0
        assert metrics["worker_generations"] == [0]
    finally:
        pool.shutdown()


def test_warm_cache_survives_across_tasks():
    pool = WorkerPool(workers=1, mode="process")
    try:
        put_pid = pool.submit(_warm_put, None).result(timeout=30)
        probe_pid, warm = pool.submit(_warm_probe, None).result(timeout=30)
        assert probe_pid == put_pid
        assert warm, "warm cache must persist across tasks in one worker"
    finally:
        pool.shutdown()


def test_timeout_kills_worker_and_respawns_with_empty_cache():
    pool = WorkerPool(workers=1, mode="process", task_timeout=0.5, retries=3)
    try:
        put_pid = pool.submit(_warm_put, None).result(timeout=30)
        future = pool.submit(_sleep_long, None)
        with pytest.raises(ExecutorTaskError, match="timeout"):
            future.result(timeout=30)
        assert pool.metrics()["tasks_retried"] == 0  # timeouts never retry
        probe_pid, warm = pool.submit(_warm_probe, None).result(timeout=30)
        assert probe_pid != put_pid, "watchdog must kill and respawn the worker"
        assert not warm, "a respawned worker must start with an empty warm cache"
        metrics = pool.metrics()
        assert metrics["worker_respawns"] == 1
        assert metrics["worker_generations"] == [1]
    finally:
        pool.shutdown()


def test_sigkill_crash_retries_on_a_fresh_worker(tmp_path):
    pool = WorkerPool(workers=1, mode="process", retries=2, retry_backoff=0.01)
    try:
        put_pid = pool.submit(_warm_put, None).result(timeout=30)
        marker = str(tmp_path / "attempted")
        survivor = pool.submit(_sigkill_unless_marker, marker).result(timeout=30)
        assert survivor != put_pid
        metrics = pool.metrics()
        assert metrics["tasks_retried"] == 1
        assert metrics["worker_respawns"] == 1
        probe_pid, warm = pool.submit(_warm_probe, None).result(timeout=30)
        assert probe_pid == survivor  # the respawned worker keeps serving
        assert not warm
    finally:
        pool.shutdown()


def test_crash_that_exhausts_retries_leaves_pool_usable():
    pool = WorkerPool(workers=1, mode="process", retries=0)
    try:
        future = pool.submit(_sigkill_always, None)
        with pytest.raises(ExecutorTaskError, match="worker process died"):
            future.result(timeout=30)
        assert pool.submit(_pid, None).result(timeout=30) > 0
    finally:
        pool.shutdown()


def test_shutdown_stops_persistent_workers():
    import multiprocessing

    pool = WorkerPool(workers=2, mode="process")
    pids = [pool.submit(_pid, i).result(timeout=30) for i in range(4)]
    assert pids
    pool.shutdown()
    deadline = time.monotonic() + 10
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()


# ----------------------------------------------------------------------
# Zero-copy trace transport
# ----------------------------------------------------------------------
def test_shm_transport_roundtrips_byte_identically_without_leaks(captured):
    _, trace = captured
    before = _shm_listing()
    payload, handle = publish_trace(trace, "shm-roundtrip-key")
    try:
        assert isinstance(payload, TraceRef)
        assert payload.kind == "shm"
        warm_cache().clear()  # force a real decode, not a registry hit
        resolved = payload.resolve()
        assert resolved.to_bytes() == trace.to_bytes()
        # A second resolve is served from the warm registry.
        hits_before = warm_cache().snapshot()["trace_hits"]
        assert payload.resolve() is resolved
        assert warm_cache().snapshot()["trace_hits"] == hits_before + 1
    finally:
        if handle is not None:
            handle.close()
            handle.close()  # idempotent
    assert _shm_listing() == before, "shm segment must be unlinked on release"


def test_path_transport_mmaps_the_cache_artifact(captured, tmp_path):
    spec, trace = captured
    cache = ResultCache(tmp_path)
    key = spec.timing_key()
    cache.store_trace(key, trace)
    loaded = cache.load_trace(key)
    payload, handle = publish_trace(loaded, key)
    assert handle is None
    assert isinstance(payload, TraceRef)
    assert payload.kind == "path"
    assert payload.locator == str(cache.trace_path_for(key))
    warm_cache().clear()
    assert payload.resolve().to_bytes() == trace.to_bytes()


def test_publish_falls_back_to_the_trace_itself_when_source_is_stale(
    captured, tmp_path
):
    spec, trace = captured
    cache = ResultCache(tmp_path / "stale")
    key = spec.timing_key()
    cache.store_trace(key, trace)
    loaded = cache.load_trace(key)
    cache.trace_path_for(key).unlink()  # artifact pruned out from under us
    payload, handle = publish_trace(loaded, key)
    # Falls back to shm (or, failing that, the trace itself) — never a
    # dangling path reference.
    try:
        if isinstance(payload, TraceRef):
            assert payload.kind == "shm"
            warm_cache().clear()
            assert payload.resolve().to_bytes() == trace.to_bytes()
        else:
            assert payload is loaded
    finally:
        if handle is not None:
            handle.close()


def test_pool_replay_groups_are_byte_identical_and_leak_free(captured):
    spec, trace = captured
    specs = _power_variants(spec, 3)
    serial = execute_replay_group((trace, tuple(specs)))
    serial_docs = [json.dumps(result_to_dict(r), sort_keys=True) for r in serial]

    before = _shm_listing()
    pool = WorkerPool(workers=2, mode="process")
    try:
        executor = PoolBackedExecutor(pool)
        groups = executor.run_tasks(
            execute_replay_group, [(trace, tuple(specs)), (trace, tuple(specs))]
        )
        assert pool.drain(timeout=30)
        for group in groups:
            docs = [json.dumps(result_to_dict(r), sort_keys=True) for r in group]
            assert docs == serial_docs, "pool replay must be byte-identical"
        warm = pool.metrics()["warm_cache"]
        assert warm["trace_misses"] >= 1  # each worker decoded at most once
        assert warm["solver_misses"] >= 1
    finally:
        pool.shutdown()
    assert _shm_listing() == before, "no shm segments may survive the drain"
    assert pool.metrics()["warm_cache"]["trace_misses"] >= 1


# ----------------------------------------------------------------------
# Utilization integral
# ----------------------------------------------------------------------
def test_utilization_is_a_busy_time_integral():
    pool = WorkerPool(workers=2, mode="thread")
    try:
        futures = [pool.submit(_nap, 0.05) for _ in range(6)]
        for future in futures:
            future.result(timeout=10)
        metrics = pool.metrics()
        # 6 x 50 ms of work really happened; the integral must see it even
        # though no task is running at scrape time.
        assert metrics["busy_workers"] == 0
        assert metrics["busy_seconds"] >= 0.25
        assert metrics["utilization"] > 0.0
        assert 0.0 < metrics["task_latency_p50_seconds"] <= metrics[
            "task_latency_p99_seconds"
        ]
    finally:
        pool.shutdown()


def test_runtime_info_surfaces_in_campaign_outcome(captured):
    from repro.campaign import run_campaign

    settings = ExperimentSettings(
        benchmarks=("gzip",), uops_per_benchmark=800, seed=5
    )
    campaign = Campaign.single(baseline_config(), settings)
    pool = WorkerPool(workers=1, mode="process")
    try:
        outcome = run_campaign(campaign, executor=PoolBackedExecutor(pool))
        assert outcome.runtime["mode"] == "process"
        assert outcome.runtime["keepalive"] is True
        assert set(outcome.runtime["warm_cache"]) >= {
            "solver_hits",
            "solver_misses",
            "trace_hits",
            "trace_misses",
        }
    finally:
        pool.shutdown()

"""Unit and property-based tests for the synthetic trace generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.microops import UopClass
from repro.workloads.generator import TraceGenerator, generate_traces
from repro.workloads.profiles import SPEC2000_PROFILES, get_profile
from repro.workloads.trace import compute_statistics


def test_generator_accepts_profile_name_or_object():
    by_name = TraceGenerator("gzip", seed=3)
    by_profile = TraceGenerator(get_profile("gzip"), seed=3)
    assert [u.pc for u in by_name.generate(200)] == [u.pc for u in by_profile.generate(200)]


def test_generator_rejects_wrong_profile_type():
    with pytest.raises(TypeError):
        TraceGenerator(42)


def test_generator_seed_is_stable_across_processes():
    """Traces must not depend on PYTHONHASHSEED (string-hash randomization).

    The campaign layer relies on this: spawn-based worker processes and
    content-keyed cached results are only interchangeable with in-process
    simulation if the same (benchmark, seed) always yields the same trace.
    """
    import os
    import subprocess
    import sys

    script = (
        "from repro.workloads.generator import TraceGenerator\n"
        "t = TraceGenerator('gzip', seed=7).generate(300)\n"
        "print([(u.pc, u.mem_addr) for u in t][:50])\n"
    )
    outputs = set()
    for hash_seed in ("1", "2"):
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={
                **os.environ,
                "PYTHONHASHSEED": hash_seed,
                "PYTHONPATH": os.pathsep.join(sys.path),
            },
        )
        outputs.add(completed.stdout)
    assert len(outputs) == 1

    in_process = TraceGenerator("gzip", seed=7).generate(300)
    assert str([(u.pc, u.mem_addr) for u in in_process][:50]) == outputs.pop().strip()


def test_generator_rejects_non_positive_length():
    generator = TraceGenerator("gzip")
    with pytest.raises(ValueError):
        generator.generate(0)
    with pytest.raises(ValueError):
        list(generator.stream(-5))


def test_same_seed_gives_identical_traces():
    a = TraceGenerator("gcc", seed=11).generate(800)
    b = TraceGenerator("gcc", seed=11).generate(800)
    assert [str(u) for u in a] == [str(u) for u in b]


def test_different_seeds_give_different_traces():
    a = TraceGenerator("gcc", seed=1).generate(800)
    b = TraceGenerator("gcc", seed=2).generate(800)
    assert [u.mem_addr for u in a] != [u.mem_addr for u in b]


def test_stream_matches_generate():
    generator_a = TraceGenerator("vpr", seed=5)
    generator_b = TraceGenerator("vpr", seed=5)
    assert [u.pc for u in generator_a.generate(300)] == [
        u.pc for u in generator_b.stream(300)
    ]


def test_generated_length_is_exact():
    assert len(TraceGenerator("art", seed=0).generate(777)) == 777


def test_instruction_mix_tracks_profile():
    """The dynamic mix should land near the profile's targets."""
    profile = get_profile("gzip")
    stats = TraceGenerator(profile, seed=1).generate(6000).statistics()
    assert abs(stats.load_fraction - profile.load_fraction) < 0.06
    assert abs(stats.store_fraction - profile.store_fraction) < 0.06
    assert abs(stats.branch_fraction - profile.branch_fraction) < 0.06
    assert abs(stats.misprediction_rate - profile.branch_misprediction_rate) < 0.05


def test_fp_benchmark_generates_fp_uops():
    stats = TraceGenerator("swim", seed=1).generate(4000).statistics()
    assert stats.fp_fraction > 0.25


def test_integer_benchmark_generates_no_fp_uops():
    stats = TraceGenerator("gzip", seed=1).generate(4000).statistics()
    assert stats.fp_fraction < 0.02


def test_memory_uops_have_addresses_and_footprint_is_bounded():
    profile = get_profile("crafty")
    trace = TraceGenerator(profile, seed=2).generate(4000)
    addresses = [u.mem_addr for u in trace if u.is_mem]
    assert addresses and all(a is not None for a in addresses)
    footprint = max(addresses) - min(addresses)
    assert footprint <= profile.working_set_kb * 1024 + (1 << 28)


def test_static_footprint_reflects_loop_structure():
    profile = get_profile("gcc")
    generator = TraceGenerator(profile, seed=0)
    expected_min = profile.num_hot_loops * profile.loop_body_uops
    assert generator.static_footprint_uops >= expected_min
    assert "gcc" in generator.describe()


def test_pcs_repeat_across_loop_iterations():
    """Hot loops must revisit the same PCs so the trace cache can hit."""
    trace = TraceGenerator("sixtrack", seed=0).generate(5000)
    stats = trace.statistics()
    assert stats.distinct_pcs < len(trace) / 4


def test_generate_traces_honors_relative_length():
    traces = generate_traces(["gzip", "swim"], uops_per_benchmark=2000)
    lengths = {t.benchmark: len(t) for t in traces}
    assert lengths["gzip"] == 2000
    assert lengths["swim"] == round(2000 * get_profile("swim").relative_length)


def test_generate_traces_can_ignore_relative_length():
    traces = generate_traces(["swim"], uops_per_benchmark=1500, honor_relative_length=False)
    assert len(traces[0]) == 1500


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(sorted(SPEC2000_PROFILES)),
    seed=st.integers(0, 2**16),
    length=st.integers(200, 1500),
)
def test_every_generated_uop_is_well_formed(name, seed, length):
    """Property: every micro-op satisfies the MicroOp invariants."""
    trace = TraceGenerator(name, seed=seed).generate(length)
    assert len(trace) == length
    for uop in trace:
        assert uop.pc >= 0
        assert len(uop.sources) <= 2
        if uop.is_mem:
            assert uop.mem_addr is not None and uop.mem_addr >= 0
        if uop.uop_class is UopClass.BRANCH:
            assert uop.is_branch
        if uop.dest is not None:
            assert uop.dest.is_fp == (uop.is_fp or uop.uop_class is UopClass.LOAD and uop.dest.is_fp)


@settings(max_examples=10, deadline=None)
@given(name=st.sampled_from(sorted(SPEC2000_PROFILES)), seed=st.integers(0, 100))
def test_statistics_are_consistent_with_uop_stream(name, seed):
    """Property: recomputing statistics over the same uops gives the same counts."""
    trace = TraceGenerator(name, seed=seed).generate(600)
    direct = trace.statistics()
    recomputed = compute_statistics(list(trace))
    assert direct == recomputed

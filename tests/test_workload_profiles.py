"""Unit tests for the SPEC2000 workload profiles."""

import dataclasses

import pytest

from repro.workloads.profiles import (
    SPEC2000_PROFILES,
    SPECFP_NAMES,
    SPECINT_NAMES,
    WorkloadProfile,
    get_profile,
)


def test_there_are_26_spec2000_profiles():
    assert len(SPEC2000_PROFILES) == 26
    assert len(SPECINT_NAMES) == 12
    assert len(SPECFP_NAMES) == 14


def test_int_and_fp_suites_are_disjoint_and_complete():
    assert set(SPECINT_NAMES) | set(SPECFP_NAMES) == set(SPEC2000_PROFILES)
    assert not set(SPECINT_NAMES) & set(SPECFP_NAMES)


def test_get_profile_returns_named_profile():
    profile = get_profile("gcc")
    assert profile.name == "gcc"
    assert not profile.is_fp


def test_get_profile_unknown_name_lists_valid_names():
    with pytest.raises(KeyError, match="ammp"):
        get_profile("doom3")


def test_shortened_traces_match_section4():
    """eon, fma3d, mcf, perlbmk and swim have shorter traces in the paper."""
    shortened = {name for name, p in SPEC2000_PROFILES.items() if p.relative_length < 1.0}
    assert shortened == {"eon", "fma3d", "mcf", "perlbmk", "swim"}


def test_fractions_leave_room_for_compute():
    for profile in SPEC2000_PROFILES.values():
        assert profile.compute_fraction > 0.0
        assert 0.0 <= profile.compute_fraction < 1.0


def test_fp_benchmarks_use_the_fp_datapath_more_than_int_ones():
    mean_fp = sum(get_profile(n).fp_fraction for n in SPECFP_NAMES) / len(SPECFP_NAMES)
    mean_int = sum(get_profile(n).fp_fraction for n in SPECINT_NAMES) / len(SPECINT_NAMES)
    assert mean_fp > mean_int + 0.2


def test_fp_benchmarks_have_fewer_branches():
    mean_fp = sum(get_profile(n).branch_fraction for n in SPECFP_NAMES) / len(SPECFP_NAMES)
    mean_int = sum(get_profile(n).branch_fraction for n in SPECINT_NAMES) / len(SPECINT_NAMES)
    assert mean_fp < mean_int


def test_suite_property():
    assert get_profile("swim").suite == "CFP2000"
    assert get_profile("gzip").suite == "CINT2000"


def test_profile_validation_rejects_bad_fractions():
    base = get_profile("gzip")
    with pytest.raises(ValueError):
        dataclasses.replace(base, load_fraction=1.5)
    with pytest.raises(ValueError):
        dataclasses.replace(base, load_fraction=0.6, store_fraction=0.3, branch_fraction=0.2)
    with pytest.raises(ValueError):
        dataclasses.replace(base, mean_dependency_distance=0.5)
    with pytest.raises(ValueError):
        dataclasses.replace(base, relative_length=0.0)


def test_mcf_has_the_largest_integer_working_set():
    """mcf is the canonical memory-bound integer benchmark."""
    mcf = get_profile("mcf")
    assert mcf.working_set_kb >= max(
        get_profile(name).working_set_kb for name in SPECINT_NAMES if name != "mcf"
    )

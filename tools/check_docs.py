#!/usr/bin/env python
"""Documentation checker: links, code fences, and runnable smoke snippets.

Three passes over ``docs/*.md`` and ``README.md``:

1. **Links** — every relative Markdown link (inline ``[text](target)``,
   including image links) must resolve to an existing file or directory.
   Absolute URLs (``http(s)://``) are not fetched; ``#fragment`` anchors —
   bare or on a cross-file link to another Markdown file — are checked
   against the target file's headings (GitHub-style slugs).
2. **Fences** — every ` ```python ` fence must at least compile
   (``compile(source, ..., "exec")``), so documented code cannot rot into
   syntax errors silently.
3. **Smoke snippets** — a ` ```python ` fence immediately preceded by a
   ``<!-- docs-smoke -->`` marker line is *executed* (with ``src/`` on
   ``sys.path``), which is how CI proves the DTM tutorial actually runs.

Exit status 0 when everything passes; 1 with a per-problem listing
otherwise.  Usage::

    python tools/check_docs.py            # check + run smoke snippets
    python tools/check_docs.py --no-run   # checks only (fast)
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

SMOKE_MARKER = "<!-- docs-smoke -->"

#: Inline Markdown links / images: [text](target) — target without spaces.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _strip_fences(text: str) -> str:
    """Remove fenced code blocks so links inside code are not checked."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for our docs)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _extract_fences(text: str) -> List[Tuple[int, str, bool]]:
    """Return (line_number, source, is_smoke) for every ```python fence."""
    fences = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        if line.startswith("```python"):
            smoke = i > 0 and lines[i - 1].strip() == SMOKE_MARKER
            start = i + 1
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                i += 1
            fences.append((start + 1, "\n".join(lines[start:i]), smoke))
        i += 1
    return fences


def _headings_of_text(text: str) -> set:
    # Strip code fences first: a '# comment' line inside a fence is not a
    # heading, and must not satisfy an anchor check.
    return {_github_slug(h) for h in _HEADING_RE.findall(_strip_fences(text))}


def _headings_of(path: Path) -> set:
    return _headings_of_text(path.read_text())


def check_links(path: Path, text: str) -> List[str]:
    problems = []
    headings = _headings_of_text(text)
    for target in _LINK_RE.findall(_strip_fences(text)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in headings:
                problems.append(f"{path.name}: broken anchor {target!r}")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{path.name}: broken link {target!r} -> {resolved}")
        elif fragment and resolved.suffix == ".md":
            if fragment not in _headings_of(resolved):
                problems.append(
                    f"{path.name}: broken anchor {target!r} "
                    f"(no heading #{fragment} in {resolved.name})"
                )
    return problems


def check_fences(path: Path, text: str) -> Tuple[List[str], List[Tuple[str, int, str]]]:
    problems = []
    smoke: List[Tuple[str, int, str]] = []
    for line, source, is_smoke in _extract_fences(text):
        try:
            compile(source, f"{path.name}:{line}", "exec")
        except SyntaxError as error:
            problems.append(f"{path.name}:{line}: python fence does not parse: {error}")
            continue
        if is_smoke:
            smoke.append((path.name, line, source))
    return problems, smoke


def run_smoke(snippets: List[Tuple[str, int, str]]) -> List[str]:
    problems = []
    sys.path.insert(0, str(REPO_ROOT / "src"))
    for name, line, source in snippets:
        print(f"[smoke] {name}:{line} ...")
        namespace: Dict[str, object] = {"__name__": f"docs_smoke_{name}_{line}"}
        try:
            exec(compile(source, f"{name}:{line}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report, don't crash
            problems.append(f"{name}:{line}: smoke snippet failed: {error!r}")
        else:
            print(f"[smoke] {name}:{line} OK")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-run", action="store_true",
        help="skip executing the docs-smoke snippets (checks only)",
    )
    args = parser.parse_args(argv)

    problems: List[str] = []
    smoke: List[Tuple[str, int, str]] = []
    checked = 0
    for path in DOC_FILES:
        if not path.exists():
            problems.append(f"missing documentation file: {path}")
            continue
        text = path.read_text()
        problems.extend(check_links(path, text))
        fence_problems, fence_smoke = check_fences(path, text)
        problems.extend(fence_problems)
        smoke.extend(fence_smoke)
        checked += 1

    if not smoke:
        problems.append("no docs-smoke snippet found (the tutorial must stay runnable)")
    if not args.no_run and smoke:
        problems.extend(run_smoke(smoke))

    if problems:
        print(f"\n{len(problems)} documentation problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    ran = 0 if args.no_run else len(smoke)
    print(f"docs OK: {checked} files, {ran} smoke snippet(s) executed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
